// Packed-panel GEMM engine. The driver tiles C into cache-sized
// blocks, packs the corresponding A and B panels into contiguous
// buffers laid out exactly as the micro-kernel consumes them, and
// drives the 4×8 register-blocked micro-kernel over the tiles:
//
//	for jc over N by gemmNC:         // B column block
//	  for pc over K by gemmKC:       // depth panel (accumulated in order)
//	    pack B[pc, jc] into bp       // nr-wide micro-panels, zero-padded
//	    for ic over M by gemmMC:     // A row block (parallel fan-out)
//	      pack A[ic, pc] into ap     // mr-tall micro-panels, zero-padded
//	      for each 4×8 tile: gemm4x8(ap, bp, C)
//
// Panels are zero-padded to multiples of the micro-kernel shape, so
// edge tiles run the same full-speed kernel (padding contributes exact
// zeros); only the store of an edge tile goes through a small bounce
// buffer. The optional fan-out parallelises the ic loop — preferably
// as a task group on the process's work-stealing scheduler
// (MulIntoSched, LU.Sched) so tiles share the one core budget with the
// callers that nest above them, with a deprecated private-goroutine
// path behind the old worker counts. Either way workers write disjoint
// row blocks of C and the depth (pc) accumulation order is fixed, so
// output is byte-identical for every worker count.
package linalg

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/sched"
)

const (
	// Micro-kernel shape: mr×nr accumulators held in registers.
	mr = 4
	nr = 8
	// Cache blocking: an A block is gemmMC×gemmKC (256KB), a B panel
	// gemmKC×gemmNC (1MB) — sized so the A block stays L2-resident
	// while a B panel streams from L2/L3.
	gemmMC = 128
	gemmKC = 256
	gemmNC = 512
	// Below this many multiply-adds the packing overhead outweighs the
	// micro-kernel's throughput; the scalar reference path wins.
	gemmMinMadds = 16 * 16 * 16
	// Parallel fan-out engages only when each worker gets at least one
	// full A block per panel; smaller problems are bandwidth-bound and
	// goroutine overhead dominates.
	gemmParMinRows = 2 * gemmMC
)

// GEMM application modes for a computed tile.
const (
	gemmSet = iota // C = T
	gemmAdd        // C += T
	gemmSub        // C -= T
)

// zeroRow backs the packing of partial micro-panels: rows and columns
// beyond the matrix edge read exact zeros. Read-only after init.
var zeroRow [gemmKC]float64

// gemmBuf holds one packing workspace: the A block, the B panel, and
// the bounce tile for edge stores. Buffers grow on demand and are
// reused; a steady-state caller performs no allocation.
type gemmBuf struct {
	a, b []float64
	tile [mr * nr]float64
}

func (g *gemmBuf) sizeA(n int) []float64 {
	if cap(g.a) < n {
		g.a = make([]float64, n)
	}
	return g.a[:n]
}

func (g *gemmBuf) sizeB(n int) []float64 {
	if cap(g.b) < n {
		g.b = make([]float64, n)
	}
	return g.b[:n]
}

// gemmBufPool amortises packing buffers across callers that do not
// carry a Workspace (MulInto's package-level entry point, parallel
// workers).
var gemmBufPool = sync.Pool{New: func() any { return new(gemmBuf) }}

// gemmPar selects the tile fan-out of the ic loop: a task group on
// sched when non-nil (the shared-budget path), otherwise workers
// private goroutines (the deprecated knob path), serial when neither.
type gemmPar struct {
	sched   *sched.Scheduler
	workers int
}

// active reports whether the fan-out engages for an m-row panel.
func (p gemmPar) active(m int) bool {
	if m < gemmParMinRows {
		return false
	}
	if p.sched != nil {
		return p.sched.Workers() > 1
	}
	return p.workers > 1
}

// MulInto computes dst = a·b into dst (reshaped as needed) without
// allocating beyond dst's backing array at steady state. dst must not
// alias a or b.
func MulInto(dst, a, b *Matrix) *Matrix { return MulIntoOpt(dst, a, b, 1, nil) }

// Mul computes C = A·B into a fresh matrix.
func Mul(a, b *Matrix) *Matrix {
	return MulInto(NewMatrix(a.Rows, b.Cols), a, b)
}

// MulIntoOpt is MulInto with explicit resources: workers > 1 fans the
// row blocks of dst out across that many private goroutines
// (deterministic — see package doc), and a non-nil ws supplies the
// packing buffers so repeated calls reuse the same storage.
//
// Deprecated: use MulIntoSched so the tile fan-out shares the
// process's scheduler budget instead of opening its own pool.
func MulIntoOpt(dst, a, b *Matrix, workers int, ws *Workspace) *Matrix {
	return mulIntoPar(dst, a, b, gemmPar{workers: workers}, ws)
}

// MulIntoSched is MulInto with the row-block fan-out forked as a task
// group on s (nil s, or a 1-worker s, is serial). Output is
// byte-identical to MulInto for every scheduler size.
func MulIntoSched(dst, a, b *Matrix, s *sched.Scheduler, ws *Workspace) *Matrix {
	return mulIntoPar(dst, a, b, gemmPar{sched: s}, ws)
}

func mulIntoPar(dst, a, b *Matrix, par gemmPar, ws *Workspace) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dims %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if !useAsm || a.Rows*a.Cols*b.Cols < gemmMinMadds {
		return MulIntoRef(dst, a, b)
	}
	dst.reshapeNoClear(a.Rows, b.Cols)
	var buf *gemmBuf
	if ws != nil {
		buf = ws.packBuf()
		defer ws.putPackBuf(buf)
	} else {
		buf = gemmBufPool.Get().(*gemmBuf)
		defer gemmBufPool.Put(buf)
	}
	gemmBlock(dst, 0, 0, a, 0, 0, b, 0, 0, a.Rows, a.Cols, b.Cols, gemmSet, par, buf)
	return dst
}

// gemmBlock applies C[ci:ci+m, cj:cj+n] op= A[ai:ai+m, ak:ak+kk] ·
// B[bk:bk+kk, bj:bj+n] through the packed micro-kernel. mode gemmSet
// overwrites C (later depth panels accumulate), gemmAdd/gemmSub
// accumulate into existing C content. The A/B regions must not overlap
// the C region (reads and writes interleave per depth panel).
func gemmBlock(c *Matrix, ci, cj int, a *Matrix, ai, ak int, b *Matrix, bk, bj int, m, kk, n, mode int, par gemmPar, buf *gemmBuf) {
	if m == 0 || n == 0 || kk == 0 {
		if kk == 0 && mode == gemmSet {
			for i := 0; i < m; i++ {
				row := c.Row(ci + i)[cj : cj+n]
				for j := range row {
					row[j] = 0
				}
			}
		}
		return
	}
	if !useAsm {
		gemmBlockRef(c, ci, cj, a, ai, ak, b, bk, bj, m, kk, n, mode)
		return
	}
	for jc := 0; jc < n; jc += gemmNC {
		nc := min(gemmNC, n-jc)
		ncp := roundUp(nc, nr)
		for pc := 0; pc < kk; pc += gemmKC {
			kc := min(gemmKC, kk-pc)
			md := mode
			if mode == gemmSet && pc > 0 {
				md = gemmAdd
			}
			bp := buf.sizeB(ncp * kc)
			packB(bp, b, bk+pc, bj+jc, kc, nc)
			if par.active(m) {
				parallelIC(c, ci, cj+jc, a, ai, ak+pc, bp, m, kc, nc, md, par)
				continue
			}
			for ic := 0; ic < m; ic += gemmMC {
				mc := min(gemmMC, m-ic)
				ap := buf.sizeA(roundUp(mc, mr) * kc)
				packA(ap, a, ai+ic, ak+pc, mc, kc)
				gemmMacro(c, ci+ic, cj+jc, ap, bp, mc, kc, nc, md, &buf.tile)
			}
		}
	}
}

// parallelIC fans the A row blocks of one depth panel out. Each runner
// packs its own A blocks (from pooled buffers) and writes a disjoint
// row range of C; the shared B panel is read-only. Work is claimed
// through an atomic counter, but the result is independent of the
// claim order because blocks do not interact. With a scheduler the
// runners are a caller-participating task group — tile work shares the
// core budget with whatever forked it (a reach source, an LU trailing
// update, an engine job) instead of adding a private pool on top.
func parallelIC(c *Matrix, ci, cj int, a *Matrix, ai, ak int, bp []float64, m, kc, nc, mode int, par gemmPar) {
	blocks := (m + gemmMC - 1) / gemmMC
	runBlock := func(blk int, buf *gemmBuf) {
		ic := blk * gemmMC
		mc := min(gemmMC, m-ic)
		ap := buf.sizeA(roundUp(mc, mr) * kc)
		packA(ap, a, ai+ic, ak, mc, kc)
		gemmMacro(c, ci+ic, cj, ap, bp, mc, kc, nc, mode, &buf.tile)
	}
	if par.sched != nil {
		par.sched.For("tile", blocks, func(blk int) {
			buf := gemmBufPool.Get().(*gemmBuf)
			runBlock(blk, buf)
			gemmBufPool.Put(buf)
		})
		return
	}
	workers := par.workers
	if workers > blocks {
		workers = blocks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := gemmBufPool.Get().(*gemmBuf)
			defer gemmBufPool.Put(buf)
			for {
				blk := int(next.Add(1)) - 1
				if blk >= blocks {
					return
				}
				runBlock(blk, buf)
			}
		}()
	}
	wg.Wait()
}

// gemmMacro runs the micro-kernel over every mr×nr tile of one packed
// A block × B panel pair. Full tiles store straight into C; edge tiles
// bounce through a stack-friendly scratch tile so the kernel never
// writes outside C.
func gemmMacro(c *Matrix, ci, cj int, ap, bp []float64, mc, kc, nc, mode int, tile *[mr * nr]float64) {
	for ir := 0; ir < mc; ir += mr {
		er := min(mr, mc-ir)
		apanel := &ap[ir*kc]
		for jr := 0; jr < nc; jr += nr {
			ec := min(nr, nc-jr)
			bpanel := &bp[jr*kc]
			if er == mr && ec == nr {
				gemm4x8(kc, apanel, bpanel, &c.Data[(ci+ir)*c.Cols+cj+jr], c.Cols, mode)
				continue
			}
			gemm4x8(kc, apanel, bpanel, &tile[0], nr, gemmSet)
			applyTile(c, ci+ir, cj+jr, er, ec, mode, tile)
		}
	}
}

// applyTile copies the valid er×ec corner of a bounce tile into C
// under the given mode.
func applyTile(c *Matrix, ci, cj, er, ec, mode int, tile *[mr * nr]float64) {
	for r := 0; r < er; r++ {
		crow := c.Row(ci + r)[cj : cj+ec]
		trow := tile[r*nr : r*nr+ec]
		switch mode {
		case gemmSet:
			copy(crow, trow)
		case gemmAdd:
			for j, v := range trow {
				crow[j] += v
			}
		case gemmSub:
			for j, v := range trow {
				crow[j] -= v
			}
		}
	}
}

// packA lays rows [ai, ai+mc) × cols [ak, ak+kc) of a out as mr-tall
// micro-panels: panel ir holds columns interleaved so the micro-kernel
// reads mr consecutive values per depth step. Rows beyond the edge
// pack exact zeros.
func packA(dst []float64, a *Matrix, ai, ak, mc, kc int) {
	z := zeroRow[:kc]
	for ir := 0; ir < mc; ir += mr {
		p := dst[ir*kc:]
		r0 := a.Row(ai + ir)[ak : ak+kc]
		r1, r2, r3 := z, z, z
		switch mc - ir {
		case 1:
		case 2:
			r1 = a.Row(ai + ir + 1)[ak : ak+kc]
		case 3:
			r1 = a.Row(ai + ir + 1)[ak : ak+kc]
			r2 = a.Row(ai + ir + 2)[ak : ak+kc]
		default:
			r1 = a.Row(ai + ir + 1)[ak : ak+kc]
			r2 = a.Row(ai + ir + 2)[ak : ak+kc]
			r3 = a.Row(ai + ir + 3)[ak : ak+kc]
		}
		for t := 0; t < kc; t++ {
			q := p[4*t : 4*t+4]
			q[0] = r0[t]
			q[1] = r1[t]
			q[2] = r2[t]
			q[3] = r3[t]
		}
	}
}

// packB lays rows [bk, bk+kc) × cols [bj, bj+nc) of b out as nr-wide
// micro-panels; columns beyond the edge pack exact zeros.
func packB(dst []float64, b *Matrix, bk, bj, kc, nc int) {
	for jr := 0; jr < nc; jr += nr {
		p := dst[jr*kc:]
		ec := min(nr, nc-jr)
		if ec == nr {
			for t := 0; t < kc; t++ {
				copy(p[nr*t:nr*t+nr], b.Row(bk + t)[bj+jr:bj+jr+nr])
			}
			continue
		}
		for t := 0; t < kc; t++ {
			q := p[nr*t : nr*t+nr]
			copy(q, b.Row(bk + t)[bj+jr:bj+jr+ec])
			for s := ec; s < nr; s++ {
				q[s] = 0
			}
		}
	}
}

func roundUp(v, to int) int { return (v + to - 1) / to * to }
