package linalg

import (
	"fmt"
	"math"

	"repro/internal/binio"
)

// matrixVersion tags the Matrix wire format.
const matrixVersion = 1

// MarshalBinary serialises the matrix as its shape plus raw IEEE-754
// element bits (exact float round trip).
func (m *Matrix) MarshalBinary() ([]byte, error) {
	if len(m.Data) < m.Rows*m.Cols {
		return nil, fmt.Errorf("linalg: matrix %dx%d with %d elements", m.Rows, m.Cols, len(m.Data))
	}
	w := binio.NewWriter(16 + m.Rows*m.Cols*8)
	w.U8(matrixVersion)
	w.Uvarint(uint64(m.Rows))
	w.Uvarint(uint64(m.Cols))
	for _, v := range m.Data[:m.Rows*m.Cols] {
		w.U64(math.Float64bits(v))
	}
	return w.Bytes(), nil
}

// UnmarshalBinary decodes a matrix written by MarshalBinary.
func (m *Matrix) UnmarshalBinary(data []byte) error {
	r := binio.NewReader(data)
	if v := r.U8(); r.Err() == nil && v != matrixVersion {
		return fmt.Errorf("linalg: matrix format version %d (want %d)", v, matrixVersion)
	}
	rows64 := r.Uvarint()
	cols64 := r.Uvarint()
	// Bound each dimension before multiplying: a corrupt file could
	// otherwise overflow rows*cols past the guard and panic make().
	const maxDim = 1 << 30
	if r.Err() == nil && (rows64 > maxDim || cols64 > maxDim ||
		rows64*cols64 > uint64(r.Remaining())/8) {
		return fmt.Errorf("linalg: matrix shape %dx%d exceeds %d payload bytes", rows64, cols64, r.Remaining())
	}
	rows, cols := int(rows64), int(cols64)
	d := make([]float64, rows*cols)
	for i := range d {
		d[i] = math.Float64frombits(r.U64())
	}
	if err := r.Close(); err != nil {
		return err
	}
	m.Rows, m.Cols, m.Data = rows, cols, d
	return nil
}
