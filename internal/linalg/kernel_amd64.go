//go:build amd64

package linalg

// useAsm reports whether the AVX2+FMA micro-kernels are usable on this
// CPU. When false (pre-Haswell hardware, or YMM state disabled by the
// OS), every kernel falls back to the scalar reference path.
var useAsm = cpuHasAVX2FMA()

// cpuHasAVX2FMA probes CPUID for AVX2+FMA3 support and XGETBV for OS
// YMM-state support.
func cpuHasAVX2FMA() bool

// gemm4x8 computes the 4×8 register-blocked tile product over packed
// micro-panels and stores (mode 0), adds (1), or subtracts (2) it into
// C with row stride ldc. Implemented in gemm_amd64.s.
//
//go:noescape
func gemm4x8(kc int, ap, bp, c *float64, ldc, mode int)

// dotAsm returns Σ x[i]·y[i] with a four-accumulator FMA loop.
//
//go:noescape
func dotAsm(x, y *float64, n int) float64

// axpyAsm computes y += a·x with a 16-wide FMA loop.
//
//go:noescape
func axpyAsm(a float64, x, y *float64, n int)
