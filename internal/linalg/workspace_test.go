package linalg

import (
	"math"
	"testing"
)

func TestWorkspaceVecReuse(t *testing.T) {
	w := NewWorkspace()
	v := w.Vec(8)
	for i := range v {
		v[i] = float64(i)
	}
	w.PutVec(v)
	v2 := w.Vec(4)
	if &v2[0] != &v[0] {
		t.Error("compatible vector not reused")
	}
	for i, x := range v2 {
		if x != 0 {
			t.Fatalf("reused vector not zeroed at %d", i)
		}
	}
	// Larger request must allocate fresh storage.
	big := w.Vec(16)
	if len(big) != 16 {
		t.Fatalf("len = %d", len(big))
	}
}

func TestWorkspaceMatrixReuse(t *testing.T) {
	w := NewWorkspace()
	m := w.Matrix(4, 4)
	m.Set(0, 0, 7)
	w.PutMatrix(m)
	m2 := w.Matrix(2, 8)
	if &m2.Data[0] != &m.Data[0] {
		t.Error("compatible matrix not reused")
	}
	if m2.Rows != 2 || m2.Cols != 8 {
		t.Fatalf("shape %dx%d", m2.Rows, m2.Cols)
	}
	for i, x := range m2.Data {
		if x != 0 {
			t.Fatalf("reused matrix not zeroed at %d", i)
		}
	}
}

func TestWorkspaceLUReuse(t *testing.T) {
	w := NewWorkspace()
	f := w.LU(3)
	a := Identity(3)
	if err := f.FactorInto(a); err != nil {
		t.Fatal(err)
	}
	w.PutLU(f)
	if f2 := w.LU(3); f2 != f {
		t.Error("LU not reused")
	}
}

func TestFactorIntoMatchesFactor(t *testing.T) {
	a := randomDiagDominant(6, []float64{0.3, 0.9, 0.1, 0.7, 0.52, 0.24, 0.81})
	want, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	f := NewLU(2) // undersized on purpose: FactorInto must grow
	if err := f.FactorInto(a); err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Det()-want.Det()) > 1e-12*math.Abs(want.Det()) {
		t.Errorf("det mismatch: %v vs %v", f.Det(), want.Det())
	}
	b := []float64{1, 2, 3, 4, 5, 6}
	x1, x2 := make([]float64, 6), make([]float64, 6)
	want.Solve(b, x1)
	f.Solve(b, x2)
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("solve mismatch at %d: %v vs %v", i, x1[i], x2[i])
		}
	}
}

func TestInverseIntoMatchesInverse(t *testing.T) {
	a := randomDiagDominant(5, []float64{0.6, 0.2, 0.9, 0.33, 0.47})
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	want := f.Inverse()
	dst := NewMatrix(1, 1)
	f.InverseInto(dst)
	if dst.Rows != 5 || dst.Cols != 5 {
		t.Fatalf("shape %dx%d", dst.Rows, dst.Cols)
	}
	for i := range want.Data {
		if want.Data[i] != dst.Data[i] {
			t.Fatalf("InverseInto differs at %d", i)
		}
	}
}

func TestMulIntoMatchesMul(t *testing.T) {
	// Rectangular and larger-than-one-block shapes.
	shapes := []struct{ m, k, n int }{{3, 4, 2}, {70, 65, 80}, {128, 128, 128}}
	for _, sh := range shapes {
		a, b := NewMatrix(sh.m, sh.k), NewMatrix(sh.k, sh.n)
		s := uint64(99)
		next := func() float64 {
			s ^= s >> 12
			s ^= s << 25
			s ^= s >> 27
			return float64(s*0x2545f4914f6cdd1d%1000) / 1000
		}
		for i := range a.Data {
			a.Data[i] = next()
		}
		for i := range b.Data {
			b.Data[i] = next()
		}
		want := Mul(a, b)
		dst := NewMatrix(1, 1)
		MulInto(dst, a, b)
		if dst.Rows != sh.m || dst.Cols != sh.n {
			t.Fatalf("shape %dx%d", dst.Rows, dst.Cols)
		}
		for i := range want.Data {
			if want.Data[i] != dst.Data[i] {
				t.Fatalf("%dx%dx%d: MulInto differs at %d", sh.m, sh.k, sh.n, i)
			}
		}
	}
}

func TestMulVecT(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	y := make([]float64, 3)
	m.MulVecT([]float64{1, 2}, y)
	// yᵀ = [1 2]·m = [1+8, 2+10, 3+12]
	want := []float64{9, 12, 15}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y = %v, want %v", y, want)
		}
	}
}

// TestZeroAllocKernels pins the allocation contract of the in-place
// kernels: at steady state they allocate nothing.
func TestZeroAllocKernels(t *testing.T) {
	n := 32
	a := randomDiagDominant(n, []float64{0.4, 0.8, 0.15, 0.67, 0.29, 0.93})
	f := NewLU(n)
	inv := NewMatrix(n, n)
	dst := NewMatrix(n, n)
	b := make([]float64, n)
	x := make([]float64, n)
	for i := range b {
		b[i] = float64(i)
	}
	y := make([]float64, n)

	cases := map[string]func(){
		"FactorInto": func() {
			if err := f.FactorInto(a); err != nil {
				t.Fatal(err)
			}
		},
		"Solve":       func() { f.Solve(b, x) },
		"InverseInto": func() { f.InverseInto(inv) },
		"MulInto":     func() { MulInto(dst, a, inv) },
		"MulVec":      func() { a.MulVec(b, y) },
		"MulVecT":     func() { a.MulVecT(b, y) },
	}
	for name, fn := range cases {
		if name == "MulInto" && raceEnabled {
			// MulInto's packing buffers come from a sync.Pool, and the
			// race detector deliberately drops pool Puts at random (see
			// raceEnabled), so the zero-alloc pin only holds without it.
			continue
		}
		fn() // warm up sizing
		if allocs := testing.AllocsPerRun(10, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f objects per run, want 0", name, allocs)
		}
	}
}
