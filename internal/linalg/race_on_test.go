//go:build race

package linalg

// raceEnabled reports whether the race detector is active.
const raceEnabled = true
