//go:build !amd64

package linalg

// useAsm is false without the amd64 micro-kernels: every entry point
// runs the scalar reference path, and the stubs below are never
// reached (they exist so the portable driver compiles).
const useAsm = false

func gemm4x8(kc int, ap, bp, c *float64, ldc, mode int) {
	panic("linalg: gemm4x8 without asm support")
}

func dotAsm(x, y *float64, n int) float64 {
	panic("linalg: dotAsm without asm support")
}

func axpyAsm(a float64, x, y *float64, n int) {
	panic("linalg: axpyAsm without asm support")
}
