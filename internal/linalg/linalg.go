// Package linalg provides the dense linear-algebra kernels the
// reaching-probability engine needs: row-major matrices, LU
// factorisation with partial pivoting, solves, inversion, and
// matrix multiplication.
//
// # Kernel architecture
//
// The O(n³) kernels are built around a packed-panel, register-blocked
// micro-kernel (see gemm.go): operands are packed into contiguous
// panel buffers and driven through a 4×8 multi-accumulator micro-kernel
// (AVX2+FMA assembly on amd64, selected at start-up by CPUID). LU
// factorisation is blocked right-looking — panel factorisation, a
// triangular solve of the panel's row block, and a trailing-submatrix
// update through the same GEMM kernel — and inversion/multi-RHS solves
// are blocked forward/back substitutions whose bulk is again GEMM.
// On architectures without the assembly micro-kernel every entry point
// falls back to the scalar reference kernels (reference.go), which are
// also kept as the parity oracle for the property tests.
//
// # Allocation contract
//
// The convenience entry points (NewMatrix, Factor, Invert, Mul) allocate
// their results. Every one of them is backed by an in-place kernel that
// does not allocate at steady state:
//
//	FactorInto   factorises into an existing LU's storage
//	Solve        solves using the LU's internal scratch
//	SolveMatInto solves a multi-RHS system into an existing matrix
//	InverseInto  writes A⁻¹ into an existing matrix
//	MulInto      writes A·B into an existing matrix (packed/blocked)
//	MulVec/MulVecT multiply into caller-provided vectors
//
// A Workspace pools vectors, matrices, LU factorisations, and GEMM
// packing buffers so a caller that computes in a loop (the reach
// engine factorises and multiplies once per CFG) reuses the same
// storage on every iteration. Workspaces, LU values, and the in-place
// kernels are NOT safe for concurrent use; give each goroutine its
// own. The optional parallel tile fan-out (MulIntoOpt, LU.Workers) is
// deterministic: workers write disjoint output tiles and the
// floating-point schedule per tile is fixed, so results are
// byte-identical for every worker count.
package linalg

import (
	"errors"
	"fmt"
)

// ErrSingular is returned when a factorisation meets an (effectively)
// singular pivot.
var ErrSingular = errors.New("linalg: singular matrix")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zero rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n×n identity.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns m[i,j].
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns m[i,j] = v.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a shared slice.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Reshape resizes m to rows×cols, reusing its backing array when it is
// large enough, and zeroes the content.
func (m *Matrix) Reshape(rows, cols int) {
	m.reshapeNoClear(rows, cols)
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// reshapeNoClear resizes m without zeroing: the internal form of
// Reshape for kernels that overwrite every element anyway (CopyFrom,
// the packed GEMM paths, blocked solves). Exported callers get
// Reshape's zeroing contract; in-package hot paths skip the redundant
// clear.
func (m *Matrix) reshapeNoClear(rows, cols int) {
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	} else {
		m.Data = m.Data[:n]
	}
	m.Rows, m.Cols = rows, cols
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CopyFrom resizes m to a's shape and copies a's content.
func (m *Matrix) CopyFrom(a *Matrix) {
	m.reshapeNoClear(a.Rows, a.Cols)
	copy(m.Data, a.Data)
}

// ApproxBytes reports the matrix's resident size for cache accounting.
func (m *Matrix) ApproxBytes() int64 { return int64(cap(m.Data))*8 + 48 }

// MulVec computes y = m·x.
func (m *Matrix) MulVec(x, y []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("linalg: MulVec dims %dx%d × %d -> %d", m.Rows, m.Cols, len(x), len(y)))
	}
	if useAsm && m.Cols >= 16 {
		xp := &x[0]
		for i := 0; i < m.Rows; i++ {
			y[i] = dotAsm(&m.Data[i*m.Cols], xp, m.Cols)
		}
		return
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
}

// Axpy computes y += a·x over equal-length vectors, using the FMA
// kernel when available.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Axpy dims %d vs %d", len(x), len(y)))
	}
	if a == 0 || len(x) == 0 {
		return
	}
	if useAsm && len(x) >= 16 {
		axpyAsm(a, &x[0], &y[0], len(x))
		return
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// Dot returns Σ x[i]·y[i] over equal-length vectors, using the FMA
// kernel when available.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Dot dims %d vs %d", len(x), len(y)))
	}
	if len(x) == 0 {
		return 0
	}
	if useAsm && len(x) >= 16 {
		return dotAsm(&x[0], &y[0], len(x))
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// MulVecT computes y = mᵀ·x (y[j] = Σ_i x[i]·m[i,j]) without
// materialising the transpose; it walks m row-wise, so it is as
// cache-friendly as MulVec.
func (m *Matrix) MulVecT(x, y []float64) {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVecT dims %dx%d ᵀ× %d -> %d", m.Rows, m.Cols, len(x), len(y)))
	}
	for j := range y {
		y[j] = 0
	}
	wide := useAsm && m.Cols >= 16
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		if wide {
			axpyAsm(xi, &m.Data[i*m.Cols], &y[0], m.Cols)
			continue
		}
		row := m.Row(i)
		for j, v := range row {
			y[j] += xi * v
		}
	}
}
