// Package linalg provides the small dense linear-algebra kernel the
// reaching-probability engine needs: row-major matrices, LU factorisation
// with partial pivoting, solves, and inversion. It is deliberately
// minimal — no BLAS ambitions — but the inner loops are written to be
// cache-friendly because the engine factorises one matrix per CFG node.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorisation meets an (effectively)
// singular pivot.
var ErrSingular = errors.New("linalg: singular matrix")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zero rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n×n identity.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns m[i,j].
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns m[i,j] = v.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a shared slice.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec computes y = m·x.
func (m *Matrix) MulVec(x, y []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("linalg: MulVec dims %dx%d × %d -> %d", m.Rows, m.Cols, len(x), len(y)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
}

// Mul computes C = A·B.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dims %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}

// LU is a compact LU factorisation with partial pivoting: PA = LU.
type LU struct {
	lu   *Matrix
	piv  []int
	sign float64
}

// Factor computes the LU factorisation of a square matrix. The input is
// not modified.
func Factor(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Factor needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1.0
	for k := 0; k < n; k++ {
		// Pivot selection.
		p, max := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > max {
				p, max = i, v
			}
		}
		if max < 1e-14 {
			return nil, fmt.Errorf("%w: pivot %d ~ %g", ErrSingular, k, max)
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		// Elimination.
		pivot := lu.At(k, k)
		rowk := lu.Row(k)
		for i := k + 1; i < n; i++ {
			rowi := lu.Row(i)
			f := rowi[k] / pivot
			rowi[k] = f
			if f == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				rowi[j] -= f * rowk[j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// Solve solves A·x = b into x (x and b may alias).
func (f *LU) Solve(b, x []float64) {
	n := f.lu.Rows
	if len(b) != n || len(x) != n {
		panic("linalg: Solve dimension mismatch")
	}
	// Apply permutation.
	tmp := make([]float64, n)
	for i := 0; i < n; i++ {
		tmp[i] = b[f.piv[i]]
	}
	// Forward substitution (L has unit diagonal).
	for i := 1; i < n; i++ {
		row := f.lu.Row(i)
		s := tmp[i]
		for j := 0; j < i; j++ {
			s -= row[j] * tmp[j]
		}
		tmp[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Row(i)
		s := tmp[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * tmp[j]
		}
		tmp[i] = s / row[i]
	}
	copy(x, tmp)
}

// Inverse computes A⁻¹ column by column.
func (f *LU) Inverse() *Matrix {
	n := f.lu.Rows
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	x := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		f.Solve(e, x)
		for i := 0; i < n; i++ {
			inv.Set(i, j, x[i])
		}
	}
	return inv
}

// Det returns the determinant from the factorisation.
func (f *LU) Det() float64 {
	d := f.sign
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Invert is a convenience wrapper: Factor + Inverse.
func Invert(a *Matrix) (*Matrix, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Inverse(), nil
}
