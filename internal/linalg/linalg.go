// Package linalg provides the small dense linear-algebra kernel the
// reaching-probability engine needs: row-major matrices, LU factorisation
// with partial pivoting, solves, inversion, and blocked multiplication.
// It is deliberately minimal — no BLAS ambitions — but every kernel has
// an allocation-free form so the hot path can run entirely out of
// reusable storage.
//
// # Allocation contract
//
// The convenience entry points (NewMatrix, Factor, Invert, Mul) allocate
// their results. Every one of them is backed by an in-place kernel that
// does not allocate at steady state:
//
//	FactorInto   factorises into an existing LU's storage
//	Solve        solves using the LU's internal scratch
//	InverseInto  writes A⁻¹ into an existing matrix
//	MulInto      writes A·B into an existing matrix (blocked)
//	MulVec/MulVecT multiply into caller-provided vectors
//
// A Workspace pools vectors, matrices, and LU factorisations so a
// caller that computes in a loop (the reach engine factorises and
// multiplies once per CFG) reuses the same storage on every iteration.
// Workspaces, LU values, and the In-place kernels are NOT safe for
// concurrent use; give each goroutine its own.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorisation meets an (effectively)
// singular pivot.
var ErrSingular = errors.New("linalg: singular matrix")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zero rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n×n identity.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns m[i,j].
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns m[i,j] = v.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a shared slice.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Reshape resizes m to rows×cols, reusing its backing array when it is
// large enough, and zeroes the content.
func (m *Matrix) Reshape(rows, cols int) {
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	} else {
		m.Data = m.Data[:n]
		for i := range m.Data {
			m.Data[i] = 0
		}
	}
	m.Rows, m.Cols = rows, cols
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CopyFrom resizes m to a's shape and copies a's content.
func (m *Matrix) CopyFrom(a *Matrix) {
	m.Reshape(a.Rows, a.Cols)
	copy(m.Data, a.Data)
}

// ApproxBytes reports the matrix's resident size for cache accounting.
func (m *Matrix) ApproxBytes() int64 { return int64(cap(m.Data))*8 + 48 }

// MulVec computes y = m·x.
func (m *Matrix) MulVec(x, y []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("linalg: MulVec dims %dx%d × %d -> %d", m.Rows, m.Cols, len(x), len(y)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
}

// MulVecT computes y = mᵀ·x (y[j] = Σ_i x[i]·m[i,j]) without
// materialising the transpose; it walks m row-wise, so it is as
// cache-friendly as MulVec.
func (m *Matrix) MulVecT(x, y []float64) {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVecT dims %dx%d ᵀ× %d -> %d", m.Rows, m.Cols, len(x), len(y)))
	}
	for j := range y {
		y[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Row(i)
		for j, v := range row {
			y[j] += xi * v
		}
	}
}

// mulBlock is the k-panel height of the blocked multiply: mulBlock rows
// of B (≤ 2KB each at n ≤ 256) stay L1/L2-resident while a C row
// accumulates across the panel.
const mulBlock = 64

// MulInto computes dst = a·b into dst (reshaped as needed) without
// allocating beyond dst's backing array. dst must not alias a or b.
// The k loop is tiled so each panel of b is reused across every row of
// a while still hot.
func MulInto(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dims %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	dst.Reshape(a.Rows, b.Cols)
	for kk := 0; kk < a.Cols; kk += mulBlock {
		kend := kk + mulBlock
		if kend > a.Cols {
			kend = a.Cols
		}
		for i := 0; i < a.Rows; i++ {
			arow := a.Row(i)
			crow := dst.Row(i)
			for k := kk; k < kend; k++ {
				av := arow[k]
				if av == 0 {
					continue
				}
				brow := b.Row(k)
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	}
	return dst
}

// Mul computes C = A·B into a fresh matrix.
func Mul(a, b *Matrix) *Matrix {
	return MulInto(NewMatrix(a.Rows, b.Cols), a, b)
}

// LU is a compact LU factorisation with partial pivoting: PA = LU. An
// LU's storage is reused across FactorInto calls, and Solve/InverseInto
// run out of its internal scratch, so a long-lived LU performs no
// steady-state allocation. An LU is not safe for concurrent use.
type LU struct {
	lu   *Matrix
	piv  []int
	sign float64
	work []float64 // Solve scratch
	aux  []float64 // InverseInto column scratch
}

// NewLU returns an LU with storage preallocated for n×n factorisations.
func NewLU(n int) *LU {
	return &LU{
		lu:   NewMatrix(n, n),
		piv:  make([]int, n),
		work: make([]float64, n),
		aux:  make([]float64, n),
	}
}

// Factor computes the LU factorisation of a square matrix into fresh
// storage. The input is not modified.
func Factor(a *Matrix) (*LU, error) {
	f := NewLU(a.Rows)
	if err := f.FactorInto(a); err != nil {
		return nil, err
	}
	return f, nil
}

// FactorInto factorises a into f's storage, growing it if needed but
// never allocating once f has seen a matrix of this size. The input is
// not modified. On error f's previous factorisation is destroyed.
func (f *LU) FactorInto(a *Matrix) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("linalg: Factor needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if f.lu == nil {
		f.lu = &Matrix{}
	}
	f.lu.CopyFrom(a)
	if cap(f.piv) < n {
		f.piv = make([]int, n)
		f.work = make([]float64, n)
		f.aux = make([]float64, n)
	}
	f.piv = f.piv[:n]
	f.work = f.work[:n]
	f.aux = f.aux[:n]
	lu := f.lu
	for i := range f.piv {
		f.piv[i] = i
	}
	f.sign = 1.0
	for k := 0; k < n; k++ {
		// Pivot selection.
		p, max := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > max {
				p, max = i, v
			}
		}
		if max < 1e-14 {
			return fmt.Errorf("%w: pivot %d ~ %g", ErrSingular, k, max)
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
			f.sign = -f.sign
		}
		// Elimination.
		pivot := lu.At(k, k)
		rowk := lu.Row(k)
		for i := k + 1; i < n; i++ {
			rowi := lu.Row(i)
			fac := rowi[k] / pivot
			rowi[k] = fac
			if fac == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				rowi[j] -= fac * rowk[j]
			}
		}
	}
	return nil
}

// Solve solves A·x = b into x (x and b may alias). It runs out of the
// LU's internal scratch and does not allocate.
func (f *LU) Solve(b, x []float64) {
	n := f.lu.Rows
	if len(b) != n || len(x) != n {
		panic("linalg: Solve dimension mismatch")
	}
	// Apply permutation.
	tmp := f.work
	for i := 0; i < n; i++ {
		tmp[i] = b[f.piv[i]]
	}
	// Forward substitution (L has unit diagonal).
	for i := 1; i < n; i++ {
		row := f.lu.Row(i)
		s := tmp[i]
		for j := 0; j < i; j++ {
			s -= row[j] * tmp[j]
		}
		tmp[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Row(i)
		s := tmp[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * tmp[j]
		}
		tmp[i] = s / row[i]
	}
	copy(x, tmp)
}

// Inverse computes A⁻¹ into a fresh matrix.
func (f *LU) Inverse() *Matrix {
	return f.InverseInto(NewMatrix(f.lu.Rows, f.lu.Rows))
}

// InverseInto computes A⁻¹ column by column into dst (reshaped as
// needed) without allocating beyond dst's backing array.
func (f *LU) InverseInto(dst *Matrix) *Matrix {
	n := f.lu.Rows
	dst.Reshape(n, n)
	e := f.aux
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		f.Solve(e, e)
		for i := 0; i < n; i++ {
			dst.Set(i, j, e[i])
		}
	}
	return dst
}

// Det returns the determinant from the factorisation.
func (f *LU) Det() float64 {
	d := f.sign
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Invert is a convenience wrapper: Factor + Inverse.
func Invert(a *Matrix) (*Matrix, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Inverse(), nil
}
