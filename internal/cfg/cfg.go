// Package cfg builds the dynamic control-flow graph of a profiled run
// and applies the paper's pruning transformation (HPCA'02 §3.1): basic
// blocks are kept from hottest to coldest until 90% of the dynamically
// executed instructions are covered; every pruned node is bypassed by
// splicing predecessor→successor edges with the original weight split
// proportionally across the successors, so no control-flow reachability
// information is lost.
package cfg

import (
	"fmt"
	"sort"

	"repro/internal/emu"
)

// Node is one basic block of the dynamic CFG.
type Node struct {
	PC    uint32  // leader PC
	Len   int     // static instruction count of the block
	Count float64 // dynamic execution count (fractional after splicing)
}

// Instrs returns the dynamic instructions attributed to the node.
func (n *Node) Instrs() float64 { return n.Count * float64(n.Len) }

// Edge is a weighted successor reference.
type Edge struct {
	To int     // node index
	W  float64 // dynamic traversal weight
}

// Graph is a weighted dynamic CFG. Node 0..len(Nodes)-1 index the Succ
// adjacency lists.
type Graph struct {
	Nodes []Node
	Succ  [][]Edge
	// ByPC maps a leader PC to its node index.
	ByPC map[uint32]int
	// Coverage is the fraction of dynamic instructions covered by the
	// retained nodes (1.0 for an unpruned graph).
	Coverage float64
}

// Build constructs the full dynamic CFG from a profile, one node per
// executed basic block.
func Build(pr *emu.Profile) *Graph {
	var leaders []uint32
	for _, l := range pr.Leaders {
		if pr.BlockCount[l] > 0 {
			leaders = append(leaders, l)
		}
	}
	sort.Slice(leaders, func(i, j int) bool { return leaders[i] < leaders[j] })

	g := &Graph{ByPC: make(map[uint32]int, len(leaders))}
	for _, l := range leaders {
		g.ByPC[l] = len(g.Nodes)
		g.Nodes = append(g.Nodes, Node{PC: l, Len: pr.BlockLen[l], Count: float64(pr.BlockCount[l])})
	}
	g.Succ = make([][]Edge, len(g.Nodes))
	for e, c := range pr.EdgeCount {
		from, okF := g.ByPC[e.From]
		to, okT := g.ByPC[e.To]
		if !okF || !okT || c == 0 {
			continue
		}
		g.Succ[from] = append(g.Succ[from], Edge{To: to, W: float64(c)})
	}
	for i := range g.Succ {
		sort.Slice(g.Succ[i], func(a, b int) bool { return g.Succ[i][a].To < g.Succ[i][b].To })
	}
	g.Coverage = 1.0
	return g
}

// ApproxBytes reports the graph's approximate resident size for engine
// cache accounting (24B per node, 16B per edge, ~32B per ByPC entry).
func (g *Graph) ApproxBytes() int64 {
	edges := 0
	for _, s := range g.Succ {
		edges += len(s)
	}
	return int64(len(g.Nodes))*24 + int64(edges)*16 + int64(len(g.ByPC))*32 + 96
}

// TotalInstrs returns the dynamic instructions attributed to retained
// nodes.
func (g *Graph) TotalInstrs() float64 {
	total := 0.0
	for i := range g.Nodes {
		total += g.Nodes[i].Instrs()
	}
	return total
}

// OutWeight returns the total outgoing edge weight of node i.
func (g *Graph) OutWeight(i int) float64 {
	w := 0.0
	for _, e := range g.Succ[i] {
		w += e.W
	}
	return w
}

// Prune returns a new graph containing the hottest nodes covering at
// least the given fraction of dynamic instructions (and at most maxNodes
// nodes; 0 means unlimited). Pruned nodes are bypassed per the paper:
// each predecessor edge is redistributed across the pruned node's
// successors proportionally to the successor weights.
func (g *Graph) Prune(coverage float64, maxNodes int) (*Graph, error) {
	if coverage <= 0 || coverage > 1 {
		return nil, fmt.Errorf("cfg: coverage %v out of (0,1]", coverage)
	}
	n := len(g.Nodes)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := g.Nodes[order[a]].Instrs(), g.Nodes[order[b]].Instrs()
		if ia != ib {
			return ia > ib
		}
		return g.Nodes[order[a]].PC < g.Nodes[order[b]].PC
	})

	total := g.TotalInstrs()
	keep := make([]bool, n)
	covered := 0.0
	kept := 0
	for _, idx := range order {
		if covered/total >= coverage && kept > 0 {
			break
		}
		if maxNodes > 0 && kept >= maxNodes {
			break
		}
		keep[idx] = true
		covered += g.Nodes[idx].Instrs()
		kept++
	}

	// Working adjacency: succ and pred weight maps.
	succ := make([]map[int]float64, n)
	pred := make([]map[int]float64, n)
	for i := range succ {
		succ[i] = make(map[int]float64)
		pred[i] = make(map[int]float64)
	}
	for i, edges := range g.Succ {
		for _, e := range edges {
			succ[i][e.To] += e.W
			pred[e.To][i] += e.W
		}
	}

	// Remove pruned nodes coldest-first, splicing around each.
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		if keep[v] {
			continue
		}
		spliceOut(succ, pred, v)
	}

	// Freeze the kept subgraph.
	out := &Graph{ByPC: make(map[uint32]int, kept), Coverage: covered / total}
	remap := make([]int, n)
	for i := range remap {
		remap[i] = -1
	}
	for _, idx := range order {
		if !keep[idx] {
			continue
		}
		remap[idx] = len(out.Nodes)
		out.ByPC[g.Nodes[idx].PC] = len(out.Nodes)
		out.Nodes = append(out.Nodes, g.Nodes[idx])
	}
	// Restore PC ordering for determinism.
	sort.Slice(out.Nodes, func(a, b int) bool { return out.Nodes[a].PC < out.Nodes[b].PC })
	for i := range out.Nodes {
		out.ByPC[out.Nodes[i].PC] = i
	}
	for i := range remap {
		if keep[i] {
			remap[i] = out.ByPC[g.Nodes[i].PC]
		}
	}
	out.Succ = make([][]Edge, len(out.Nodes))
	for v := 0; v < n; v++ {
		if !keep[v] {
			continue
		}
		nv := remap[v]
		for to, w := range succ[v] {
			if !keep[to] || w <= 0 {
				continue
			}
			out.Succ[nv] = append(out.Succ[nv], Edge{To: remap[to], W: w})
		}
		sort.Slice(out.Succ[nv], func(a, b int) bool { return out.Succ[nv][a].To < out.Succ[nv][b].To })
	}
	return out, nil
}

// spliceOut removes node v, redistributing every predecessor edge across
// v's successors proportionally to the successor weights. Self-loops on
// v fold into the redistribution (their weight simply drops out of the
// denominator, preserving entry→exit flow).
func spliceOut(succ, pred []map[int]float64, v int) {
	outTotal := 0.0
	for to, w := range succ[v] {
		if to != v {
			outTotal += w
		}
	}
	for p, wpv := range pred[v] {
		if p == v {
			continue
		}
		delete(succ[p], v)
		if outTotal > 0 {
			for s, wvs := range succ[v] {
				if s == v {
					continue
				}
				add := wpv * wvs / outTotal
				succ[p][s] += add
				pred[s][p] += add
			}
		}
	}
	for s := range succ[v] {
		delete(pred[s], v)
	}
	for p := range pred[v] {
		delete(succ[p], v)
	}
	succ[v] = map[int]float64{}
	pred[v] = map[int]float64{}
}

// Transition returns the row-stochastic (or substochastic, for nodes
// with dangling flow) transition probabilities of node i as a dense row
// over all nodes.
func (g *Graph) Transition(i int, row []float64) {
	for j := range row {
		row[j] = 0
	}
	out := g.OutWeight(i)
	if out <= 0 {
		return
	}
	for _, e := range g.Succ[i] {
		row[e.To] += e.W / out
	}
}
