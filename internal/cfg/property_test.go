package cfg

import (
	"math"
	"testing"
	"testing/quick"
)

// randomGraph builds a connected weighted graph from fuzz input: node 0
// is the entry; every node gets edges to a few random targets with
// positive weights, plus consistent counts (count = inflow, entry +1).
func randomGraph(raw []uint16) *Graph {
	n := 3 + int(raw[0]%8)
	g := &Graph{ByPC: map[uint32]int{}, Coverage: 1}
	for i := 0; i < n; i++ {
		pc := uint32(i * 10)
		g.ByPC[pc] = i
		g.Nodes = append(g.Nodes, Node{PC: pc, Len: 1 + int(raw[(i+1)%len(raw)]%20)})
	}
	g.Succ = make([][]Edge, n)
	k := 1
	next := func() int {
		v := int(raw[k%len(raw)])
		k++
		return v
	}
	inflow := make([]float64, n)
	for i := 0; i < n; i++ {
		deg := 1 + next()%3
		for d := 0; d < deg; d++ {
			to := next() % n
			w := float64(1 + next()%100)
			g.Succ[i] = append(g.Succ[i], Edge{To: to, W: w})
			inflow[to] += w
		}
	}
	// Counts consistent with flow: count = max(inflow, outflow).
	for i := 0; i < n; i++ {
		out := g.OutWeight(i)
		g.Nodes[i].Count = math.Max(inflow[i], out) + 1
	}
	return g
}

// TestPrunePreservesFlowProperty: for random graphs, pruning must never
// create flow (each kept node's out-weight stays ≤ its count) and must
// keep coverage at or above the requested fraction.
func TestPrunePreservesFlowProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 4 {
			return true
		}
		g := randomGraph(raw)
		pg, err := g.Prune(0.7, 0)
		if err != nil {
			return false
		}
		if pg.Coverage < 0.7-1e-9 {
			return false
		}
		for i := range pg.Nodes {
			if pg.OutWeight(i) > pg.Nodes[i].Count*(1+1e-6)+1e-6 {
				return false
			}
		}
		// Total retained flow never exceeds the original.
		var origFlow, newFlow float64
		for i := range g.Nodes {
			origFlow += g.OutWeight(i)
		}
		for i := range pg.Nodes {
			newFlow += pg.OutWeight(i)
		}
		return newFlow <= origFlow*(1+1e-6)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPruneIdempotentOnKeptSet: pruning an already-pruned graph at the
// same coverage keeps everything.
func TestPruneIdempotentOnKeptSet(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 4 {
			return true
		}
		g := randomGraph(raw)
		p1, err := g.Prune(0.8, 0)
		if err != nil {
			return false
		}
		p2, err := p1.Prune(0.8, 0)
		if err != nil {
			return false
		}
		// A second prune at a coverage its input already exceeds
		// keeps at least as large a share of its own instructions.
		return len(p2.Nodes) <= len(p1.Nodes) && p2.Coverage >= 0.8-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
