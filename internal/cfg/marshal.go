package cfg

import (
	"fmt"

	"repro/internal/binio"
)

// graphVersion tags the Graph wire format.
const graphVersion = 1

// MarshalBinary serialises the graph (nodes, weighted adjacency,
// coverage) deterministically. ByPC is derivable from Nodes and is
// rebuilt on decode rather than stored.
func (g *Graph) MarshalBinary() ([]byte, error) {
	edges := 0
	for _, s := range g.Succ {
		edges += len(s)
	}
	w := binio.NewWriter(32 + len(g.Nodes)*20 + edges*12)
	w.U8(graphVersion)
	w.Uvarint(uint64(len(g.Nodes)))
	for i := range g.Nodes {
		n := &g.Nodes[i]
		w.U32(n.PC)
		w.Int(n.Len)
		w.F64(n.Count)
	}
	if len(g.Succ) != len(g.Nodes) {
		return nil, fmt.Errorf("cfg: %d adjacency lists for %d nodes", len(g.Succ), len(g.Nodes))
	}
	for _, succ := range g.Succ {
		w.Uvarint(uint64(len(succ)))
		for _, e := range succ {
			w.Int(e.To)
			w.F64(e.W)
		}
	}
	w.F64(g.Coverage)
	return w.Bytes(), nil
}

// UnmarshalBinary decodes a graph written by MarshalBinary, rebuilding
// the ByPC index.
func (g *Graph) UnmarshalBinary(data []byte) error {
	r := binio.NewReader(data)
	if v := r.U8(); r.Err() == nil && v != graphVersion {
		return fmt.Errorf("cfg: graph format version %d (want %d)", v, graphVersion)
	}
	nodes := make([]Node, r.Count(13))
	for i := range nodes {
		nodes[i] = Node{PC: r.U32(), Len: r.Int(), Count: r.F64()}
	}
	succ := make([][]Edge, len(nodes))
	for i := range succ {
		n := r.Count(9)
		if n == 0 {
			continue // keep leafs nil, as Build does
		}
		es := make([]Edge, n)
		for j := range es {
			es[j] = Edge{To: r.Int(), W: r.F64()}
		}
		succ[i] = es
	}
	coverage := r.F64()
	if err := r.Close(); err != nil {
		return err
	}
	byPC := make(map[uint32]int, len(nodes))
	for i := range nodes {
		byPC[nodes[i].PC] = i
	}
	g.Nodes = nodes
	g.Succ = succ
	g.ByPC = byPC
	g.Coverage = coverage
	return nil
}
