package cfg

import (
	"math"
	"testing"

	"repro/internal/emu"
	"repro/internal/workload"
)

func profileOf(t *testing.T, name string) *emu.Profile {
	t.Helper()
	p := workload.MustGenerate(name, workload.SizeTest)
	res, err := emu.Run(p, emu.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Profile
}

func TestBuildCountLoop(t *testing.T) {
	prog := workload.KernelCountLoop(10, 3)
	res, err := emu.Run(prog, emu.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g := Build(res.Profile)
	if len(g.Nodes) != 3 {
		t.Fatalf("nodes = %d, want 3", len(g.Nodes))
	}
	body, ok := g.ByPC[2]
	if !ok {
		t.Fatal("no body node at pc 2")
	}
	if g.Nodes[body].Count != 10 {
		t.Errorf("body count = %v", g.Nodes[body].Count)
	}
	var self float64
	for _, e := range g.Succ[body] {
		if e.To == body {
			self = e.W
		}
	}
	if self != 9 {
		t.Errorf("backedge weight = %v, want 9", self)
	}
	if g.Coverage != 1.0 {
		t.Errorf("coverage = %v", g.Coverage)
	}
}

func TestPruneKeepsHotLoop(t *testing.T) {
	prog := workload.KernelCountLoop(100, 6)
	res, err := emu.Run(prog, emu.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g := Build(res.Profile)
	pg, err := g.Prune(0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pg.Nodes) != 1 {
		t.Fatalf("pruned nodes = %d, want 1 (the loop body)", len(pg.Nodes))
	}
	if pg.Nodes[0].PC != 2 {
		t.Errorf("kept node pc = %d", pg.Nodes[0].PC)
	}
	if pg.Coverage < 0.9 {
		t.Errorf("coverage = %v", pg.Coverage)
	}
	// Self-loop must survive with weight 99.
	if len(pg.Succ[0]) != 1 || pg.Succ[0][0].To != 0 || pg.Succ[0][0].W != 99 {
		t.Errorf("succ = %+v", pg.Succ[0])
	}
}

// TestPruneSplicesDiamond checks the paper's edge-bypass rule: pruning
// the two arms of a diamond must create head→join edges carrying the
// combined flow.
func TestPruneSplicesDiamond(t *testing.T) {
	// Hand-built graph: head(0) -> a(1) 60 / b(2) 40; a,b -> join(3);
	// join -> head 99. Lengths chosen so a and b are coldest.
	g := &Graph{
		Nodes: []Node{
			{PC: 0, Len: 50, Count: 100},
			{PC: 10, Len: 1, Count: 60},
			{PC: 20, Len: 1, Count: 40},
			{PC: 30, Len: 50, Count: 100},
		},
		Succ: [][]Edge{
			{{To: 1, W: 60}, {To: 2, W: 40}},
			{{To: 3, W: 60}},
			{{To: 3, W: 40}},
			{{To: 0, W: 99}},
		},
		ByPC:     map[uint32]int{0: 0, 10: 1, 20: 2, 30: 3},
		Coverage: 1,
	}
	pg, err := g.Prune(0.95, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pg.Nodes) != 2 {
		t.Fatalf("kept %d nodes, want 2", len(pg.Nodes))
	}
	h, ok1 := pg.ByPC[0]
	j, ok2 := pg.ByPC[30]
	if !ok1 || !ok2 {
		t.Fatalf("head/join missing: %+v", pg.ByPC)
	}
	var w float64
	for _, e := range pg.Succ[h] {
		if e.To == j {
			w += e.W
		}
	}
	if math.Abs(w-100) > 1e-9 {
		t.Errorf("head->join spliced weight = %v, want 100", w)
	}
	var back float64
	for _, e := range pg.Succ[j] {
		if e.To == h {
			back += e.W
		}
	}
	if back != 99 {
		t.Errorf("join->head weight = %v, want 99", back)
	}
}

// TestPruneProportionalSplit checks the proportional weight split when a
// pruned node has multiple successors.
func TestPruneProportionalSplit(t *testing.T) {
	// p(0) -> v(1) 90; v -> s1(2) 30, s2(3) 60; p hot, v cold, s1/s2 hot.
	g := &Graph{
		Nodes: []Node{
			{PC: 0, Len: 100, Count: 90},
			{PC: 10, Len: 1, Count: 90},
			{PC: 20, Len: 100, Count: 30},
			{PC: 30, Len: 100, Count: 60},
		},
		Succ: [][]Edge{
			{{To: 1, W: 90}},
			{{To: 2, W: 30}, {To: 3, W: 60}},
			{},
			{},
		},
		ByPC:     map[uint32]int{0: 0, 10: 1, 20: 2, 30: 3},
		Coverage: 1,
	}
	pg, err := g.Prune(0.99, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, s1, s2 := pg.ByPC[0], pg.ByPC[20], pg.ByPC[30]
	got := map[int]float64{}
	for _, e := range pg.Succ[p] {
		got[e.To] += e.W
	}
	if math.Abs(got[s1]-30) > 1e-9 || math.Abs(got[s2]-60) > 1e-9 {
		t.Errorf("split weights = %v, want 30/60", got)
	}
}

// TestPruneFlowConservation: on real profiles, pruning must not create
// flow from nothing — each retained node's out-weight stays bounded by
// its execution count (within float tolerance).
func TestPruneFlowConservation(t *testing.T) {
	for _, name := range []string{"compress", "ijpeg", "gcc"} {
		pr := profileOf(t, name)
		g := Build(pr)
		pg, err := g.Prune(0.9, 256)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if pg.Coverage < 0.9 {
			t.Errorf("%s: coverage %v < 0.9", name, pg.Coverage)
		}
		for i := range pg.Nodes {
			out := pg.OutWeight(i)
			if out > pg.Nodes[i].Count*(1+1e-9)+1e-9 {
				t.Errorf("%s node %d (pc %d): out %v > count %v",
					name, i, pg.Nodes[i].PC, out, pg.Nodes[i].Count)
			}
		}
	}
}

func TestPruneMaxNodes(t *testing.T) {
	pr := profileOf(t, "gcc")
	g := Build(pr)
	pg, err := g.Prune(0.99, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(pg.Nodes) > 20 {
		t.Errorf("nodes = %d, want <= 20", len(pg.Nodes))
	}
}

func TestPruneRejectsBadCoverage(t *testing.T) {
	g := &Graph{Nodes: []Node{{PC: 0, Len: 1, Count: 1}}, Succ: [][]Edge{{}},
		ByPC: map[uint32]int{0: 0}}
	if _, err := g.Prune(0, 0); err == nil {
		t.Error("expected error for coverage 0")
	}
	if _, err := g.Prune(1.5, 0); err == nil {
		t.Error("expected error for coverage > 1")
	}
}

func TestTransitionRow(t *testing.T) {
	g := &Graph{
		Nodes: []Node{{PC: 0, Len: 1, Count: 10}, {PC: 1, Len: 1, Count: 6}, {PC: 2, Len: 1, Count: 4}},
		Succ: [][]Edge{
			{{To: 1, W: 6}, {To: 2, W: 4}},
			{},
			{},
		},
		ByPC: map[uint32]int{0: 0, 1: 1, 2: 2},
	}
	row := make([]float64, 3)
	g.Transition(0, row)
	if math.Abs(row[1]-0.6) > 1e-12 || math.Abs(row[2]-0.4) > 1e-12 {
		t.Errorf("row = %v", row)
	}
	g.Transition(1, row)
	for _, v := range row {
		if v != 0 {
			t.Errorf("terminal row = %v", row)
		}
	}
}
