package spmt_test

import (
	"fmt"

	"repro"
)

// ExampleAnalyze shows the full pipeline on the smallest benchmark
// size: profile, select pairs, and compare sequential vs speculative
// execution.
func ExampleAnalyze() {
	prog := spmt.MustGenerate("compress", spmt.SizeTest)
	art, err := spmt.Analyze(prog, spmt.AnalyzeConfig{})
	if err != nil {
		panic(err)
	}
	pairs, err := spmt.SelectPairs(art, spmt.SelectConfig{})
	if err != nil {
		panic(err)
	}
	base, _ := spmt.Simulate(art.Trace, spmt.SimConfig{TUs: 1})
	smt, _ := spmt.Simulate(art.Trace, spmt.SimConfig{TUs: 16, Pairs: pairs, SpawnWindowFactor: 4})
	fmt.Println(pairs.Len() > 0, spmt.Speedup(base, smt) > 1.5)
	// Output: true true
}

// ExampleSelectPairs demonstrates that every selected profile pair
// satisfies the paper's thresholds.
func ExampleSelectPairs() {
	prog := spmt.MustGenerate("ijpeg", spmt.SizeTest)
	art, _ := spmt.Analyze(prog, spmt.AnalyzeConfig{})
	pairs, _ := spmt.SelectPairs(art, spmt.SelectConfig{})
	ok := true
	for _, p := range pairs.Primary {
		if p.Kind.String() == "profile" && (p.Prob < 0.95 || p.Dist < 32) {
			ok = false
		}
	}
	fmt.Println(ok)
	// Output: true
}

// ExampleHeuristicPairs derives the paper's baseline policies.
func ExampleHeuristicPairs() {
	prog := spmt.MustGenerate("li", spmt.SizeTest)
	art, _ := spmt.Analyze(prog, spmt.AnalyzeConfig{})
	combined := spmt.HeuristicPairs(art, spmt.CombinedHeuristics)
	loops := spmt.HeuristicPairs(art, spmt.LoopIteration)
	fmt.Println(combined.Len() >= loops.Len(), loops.Len() > 0)
	// Output: true true
}
