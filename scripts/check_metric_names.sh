#!/usr/bin/env bash
# Lints every metric-name literal in the source tree: all exposition
# names must be spmt_-prefixed snake_case ([a-z0-9_], starting with a
# letter after the prefix). Catches a typo'd family name at commit
# time instead of in a dead Grafana panel.
set -euo pipefail
cd "$(dirname "$0")/.."

# Every string literal that looks like a metric name. The bare "spmt_"
# literal is the shared prefix constant, not a name; _test.go files are
# excluded (they hold deliberately-invalid fixtures).
names=$(grep -rhoE '"spmt_[A-Za-z0-9_.-]*"' --include='*.go' --exclude='*_test.go' internal cmd |
  tr -d '"' | grep -vx 'spmt_' | sort -u)

if [ -z "$names" ]; then
  echo "check_metric_names: no spmt_ metric literals found — wrong tree?" >&2
  exit 1
fi

bad=0
while IFS= read -r name; do
  if ! printf '%s\n' "$name" | grep -qEx 'spmt_[a-z][a-z0-9_]*'; then
    echo "check_metric_names: $name is not spmt_-prefixed snake_case" >&2
    bad=1
  fi
done <<<"$names"

count=$(printf '%s\n' "$names" | wc -l)
if [ "$bad" -ne 0 ]; then
  exit 1
fi
echo "check_metric_names: $count metric names OK"
