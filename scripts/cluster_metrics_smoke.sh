#!/usr/bin/env bash
# End-to-end observability smoke: boots a real 2-node spmt-server
# cluster with ops listeners, drives traffic through one entry node,
# fetches the stitched trace for a proxied request, then scrapes
# /metrics from BOTH nodes and fails on malformed exposition lines or
# missing load-bearing series.
set -euo pipefail
cd "$(dirname "$0")/.."

API0=${API0:-18080} API1=${API1:-18081}
OPS0=${OPS0:-19090} OPS1=${OPS1:-19091}
BIN=$(mktemp -d)/spmt-server
LOG=$(mktemp -d)

go build -o "$BIN" ./cmd/spmt-server

pids=()
cleanup() {
  for pid in "${pids[@]}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
}
trap cleanup EXIT

PEERS="http://127.0.0.1:$API0,http://127.0.0.1:$API1"
"$BIN" -addr "127.0.0.1:$API0" -ops-addr "127.0.0.1:$OPS0" -parallel 2 -speculate \
  -self "http://127.0.0.1:$API0" -peers "$PEERS" >"$LOG/node0.log" 2>&1 &
pids+=($!)
"$BIN" -addr "127.0.0.1:$API1" -ops-addr "127.0.0.1:$OPS1" -parallel 2 -speculate \
  -self "http://127.0.0.1:$API1" -peers "$PEERS" >"$LOG/node1.log" 2>&1 &
pids+=($!)

for port in "$OPS0" "$OPS1"; do
  for i in $(seq 1 100); do
    if curl -fsS "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; then break; fi
    if [ "$i" = 100 ]; then
      echo "cluster_metrics_smoke: node on ops port $port never became healthy" >&2
      cat "$LOG"/node*.log >&2
      exit 1
    fi
    sleep 0.1
  done
done

entry="http://127.0.0.1:$API0"
# Traffic: both benches' sim keys cannot all land on the entry node's
# shard, so some of these proxy/fan out across the ring.
curl -fsS -X POST "$entry/v1/analyze" -d '{"bench":"compress","size":"test"}' >/dev/null
trace=$(curl -fsS -D - -o /dev/null -X POST "$entry/v1/simulate" \
  -d '{"bench":"ijpeg","size":"test","tus":4}' |
  tr -d '\r' | awk -F': ' 'tolower($1)=="x-spmt-trace"{print $2}')
curl -fsS -X POST "$entry/v1/batch" \
  -d '{"size":"test","specs":[{"bench":"compress","tus":2},{"bench":"ijpeg","tus":2}]}' >/dev/null

if [ -z "$trace" ]; then
  echo "cluster_metrics_smoke: /v1/simulate response carried no X-Spmt-Trace header" >&2
  exit 1
fi
# Fetch to a file before grepping: `curl | grep -q` dies of SIGPIPE
# under pipefail once the stitched tree outgrows the pipe buffer.
curl -fsS "$entry/v1/traces/$trace" >"$LOG/trace.json"
if ! grep -q '"roots"' "$LOG/trace.json"; then
  echo "cluster_metrics_smoke: trace $trace not queryable on the entry node" >&2
  exit 1
fi

# Exposition lint: every line is a comment or a series whose name is
# spmt_ snake_case (with optional labels) and whose value parses.
check_scrape() {
  local url=$1 out=$2
  curl -fsS "$url/metrics" >"$out"
  local bad
  bad=$(grep -vE '^(# (HELP|TYPE) spmt_[a-z][a-z0-9_]* .+|spmt_[a-z][a-z0-9_]*(\{[A-Za-z0-9_]+="[^"]*"(,[A-Za-z0-9_]+="[^"]*")*\})? (-?[0-9.]+([eE][+-]?[0-9]+)?|[+-]Inf|NaN))$' "$out" || true)
  if [ -n "$bad" ]; then
    echo "cluster_metrics_smoke: malformed exposition lines from $url:" >&2
    echo "$bad" >&2
    exit 1
  fi
  for series in \
    spmt_engine_jobs_executed_total \
    spmt_engine_job_duration_seconds_bucket \
    spmt_sched_workers \
    spmt_sched_tasks_submitted_total \
    spmt_sched_steals_total \
    spmt_sched_queue_depth \
    spmt_store_hits_total \
    spmt_store_bytes_resident \
    spmt_http_requests_total \
    spmt_http_request_duration_seconds_count \
    spmt_shard_members \
    spmt_shard_proxied_total \
    spmt_traces_started_total \
    spmt_http_panics_total \
    spmt_admit_capacity \
    spmt_admit_in_use \
    spmt_admit_admitted_total \
    spmt_admit_bypassed_total \
    spmt_admit_rejected_total \
    spmt_breaker_opens_total \
    spmt_breaker_fast_fails_total \
    spmt_breaker_open_circuits \
    spmt_spec_predictions_total \
    spmt_spec_launches_total \
    spmt_spec_hits_total \
    spmt_spec_withdrawn_total \
    spmt_spec_queue_depth \
    spmt_spec_accuracy \
    spmt_spec_predictor_states \
    spmt_spec_predictor_observations_total; do
    if ! grep -q "^$series" "$out"; then
      echo "cluster_metrics_smoke: $url is missing series $series" >&2
      exit 1
    fi
  done
}

check_scrape "http://127.0.0.1:$OPS0" "$LOG/metrics0.txt"
check_scrape "http://127.0.0.1:$OPS1" "$LOG/metrics1.txt"

# Cross-node sanity: between them the two nodes must have executed
# engine jobs and proxied or fanned out at least one request.
total_exec=$(awk '/^spmt_engine_jobs_executed_total /{s+=$2} END{print s+0}' "$LOG"/metrics?.txt)
total_cross=$(awk '/^spmt_shard_(proxied_total|batch_fanouts_total) /{s+=$2} END{print s+0}' "$LOG"/metrics?.txt)
if [ "${total_exec%.*}" -lt 1 ]; then
  echo "cluster_metrics_smoke: no engine executions recorded across the cluster" >&2
  exit 1
fi
if [ "${total_cross%.*}" -lt 1 ]; then
  echo "cluster_metrics_smoke: no request crossed the ring" >&2
  exit 1
fi

echo "cluster_metrics_smoke: OK (trace $trace; exec=$total_exec cross=$total_cross)"
