#!/usr/bin/env bash
# Cluster chaos smoke: boots a real 3-node spmt-server cluster with R=2
# replication and fast health probing, proves byte parity against a
# standalone reference, then SIGKILLs one member and asserts the
# survivors answer the whole suite byte-identical WITHOUT re-running a
# single pipeline job (replicas absorb the fault), then rejoins the
# dead member with an empty store and asserts re-replication converges
# — the rejoined node serves the suite as an entry point, again with
# zero pipeline recompute. A final scenario restarts that member with
# seeded peer-latency fault injection and asserts the suite is still
# byte-identical. Node readiness is gated on /readyz throughout (the
# liveness-only /healthz would pass during drain or gate saturation).
#
# Every cluster node runs -speculate while the reference does NOT:
# each parity check therefore also proves speculative precomputation
# never changes a response byte — through kills, rejoins, sweeps, and
# injected faults.
set -euo pipefail
cd "$(dirname "$0")/.."

API0=${API0:-28080} API1=${API1:-28081} API2=${API2:-28082} APIREF=${APIREF:-28083}
OPS0=${OPS0:-29090} OPS1=${OPS1:-29091} OPS2=${OPS2:-29092}
BIN=$(mktemp -d)/spmt-server
LOG=$(mktemp -d)
STORE=$(mktemp -d)

go build -o "$BIN" ./cmd/spmt-server

pids=()
cleanup() {
  for pid in "${pids[@]}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
}
trap cleanup EXIT

fail() {
  echo "cluster_chaos_smoke: $*" >&2
  tail -n 40 "$LOG"/node*.log >&2 2>/dev/null || true
  exit 1
}

PEERS="http://127.0.0.1:$API0,http://127.0.0.1:$API1,http://127.0.0.1:$API2"
start_node() { # idx api ops extra-flags...
  local i=$1 api=$2 ops=$3
  shift 3
  "$BIN" -addr "127.0.0.1:$api" -ops-addr "127.0.0.1:$ops" -parallel 2 \
    -store-dir "$STORE/node$i" -self "http://127.0.0.1:$api" -speculate \
    -probe-interval 200ms -probe-timeout 500ms -probe-failures 2 \
    "$@" >>"$LOG/node$i.log" 2>&1 &
  pids+=($!)
}
start_node 0 "$API0" "$OPS0" -peers "$PEERS"
start_node 1 "$API1" "$OPS1" -peers "$PEERS"
start_node 2 "$API2" "$OPS2" -peers "$PEERS"
NODE2_PID=${pids[2]}
# The byte-parity ground truth: a standalone single node.
"$BIN" -addr "127.0.0.1:$APIREF" -parallel 2 >"$LOG/ref.log" 2>&1 &
pids+=($!)

wait_up() { # url desc
  for i in $(seq 1 100); do
    if curl -fsS "$1" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  fail "$2 never came up"
}
for port in "$OPS0" "$OPS1" "$OPS2"; do wait_up "http://127.0.0.1:$port/readyz" "ops $port"; done
for port in "$API0" "$API1" "$API2" "$APIREF"; do wait_up "http://127.0.0.1:$port/v1/stats" "api $port"; done

metric() { # ops-port series -> value (0 if absent)
  curl -fsS "http://127.0.0.1:$1/metrics" | awk -v s="$2" '$1==s{v=$2} END{print v+0}'
}
wait_metric() { # ops-port series want desc
  for i in $(seq 1 150); do
    if [ "$(metric "$1" "$2" | cut -d. -f1)" = "$3" ]; then return 0; fi
    sleep 0.1
  done
  fail "$4 (want $2 = $3 on ops $1, have $(metric "$1" "$2"))"
}
# The recompute meter: executed-job counts of the pipeline kinds R=2
# replication must keep warm.
pipeline_runs() { # ops-port
  curl -fsS "http://127.0.0.1:$1/metrics" |
    awk '/^spmt_engine_job_duration_seconds_count\{kind="(emu|reach|table|sim)"\}/{s+=$2} END{print s+0}'
}

run_suite() { # base-url outdir
  local base=$1 out=$2
  mkdir -p "$out"
  curl -fsS -X POST "$base/v1/analyze" -d '{"bench":"compress","size":"test"}' >"$out/analyze.json"
  curl -fsS -X POST "$base/v1/pairs" -d '{"bench":"ijpeg","size":"test","policy":"profile"}' >"$out/pairs.json"
  curl -fsS -X POST "$base/v1/simulate" -d '{"bench":"compress","size":"test","policy":"profile","tus":16}' >"$out/simulate.json"
  curl -fsS -X POST "$base/v1/batch" \
    -d '{"size":"test","specs":[{"bench":"ijpeg","policy":"none","tus":1},{"bench":"compress","tus":8}]}' >"$out/batch.ndjson"
  curl -fsS "$base/v1/figures/fig2?size=test&bench=compress,ijpeg" >"$out/figure.json"
}
compare_suite() { # dir reference-dir desc
  for f in analyze.json pairs.json simulate.json batch.ndjson figure.json; do
    cmp -s "$1/$f" "$2/$f" || fail "$3: $f differs from the single-node reference"
  done
}

run_suite "http://127.0.0.1:$APIREF" "$LOG/ref"
run_suite "http://127.0.0.1:$API0" "$LOG/healthy"
compare_suite "$LOG/healthy" "$LOG/ref" "healthy cluster"

# Write-through and the async disk queue must quiesce before the kill:
# only then is every computed artifact durable on both of its owners.
for port in "$OPS0" "$OPS1" "$OPS2"; do
  wait_metric "$port" spmt_shard_replication_pending 0 "write-through queue never drained"
  wait_metric "$port" spmt_store_disk_queue_depth 0 "disk write queue never drained"
  [ "$(metric "$port" spmt_shard_replication_dropped_total | cut -d. -f1)" = 0 ] ||
    fail "write-through pushes were dropped on ops $port"
done

# --- Chaos: kill one member abruptly. ---------------------------------
{ kill -9 "$NODE2_PID" && wait "$NODE2_PID"; } 2>/dev/null || true
wait_metric "$OPS0" spmt_shard_suspects 1 "node0 never suspected the dead member"
wait_metric "$OPS1" spmt_shard_suspects 1 "node1 never suspected the dead member"

before0=$(pipeline_runs "$OPS0")
before1=$(pipeline_runs "$OPS1")
run_suite "http://127.0.0.1:$API0" "$LOG/degraded0"
compare_suite "$LOG/degraded0" "$LOG/ref" "degraded entry node0"
run_suite "http://127.0.0.1:$API1" "$LOG/degraded1"
compare_suite "$LOG/degraded1" "$LOG/ref" "degraded entry node1"
after0=$(pipeline_runs "$OPS0")
after1=$(pipeline_runs "$OPS1")
if [ "$before0" != "$after0" ] || [ "$before1" != "$after1" ]; then
  fail "survivors recomputed pipeline jobs while degraded (node0 $before0->$after0, node1 $before1->$after1); R=2 must serve every replicated key warm"
fi

# --- Recovery: rejoin the dead member with an EMPTY store. ------------
sweeps0=$(metric "$OPS0" spmt_shard_replication_sweeps_total | cut -d. -f1)
sweeps1=$(metric "$OPS1" spmt_shard_replication_sweeps_total | cut -d. -f1)
rm -rf "$STORE/node2"
start_node 2 "$API2" "$OPS2" -join "http://127.0.0.1:$API0"
NODE2_PID=${pids[${#pids[@]}-1]}
wait_up "http://127.0.0.1:$OPS2/readyz" "rejoined ops $OPS2"
wait_metric "$OPS0" spmt_shard_suspects 0 "node0 never readmitted the rejoined member"
wait_metric "$OPS1" spmt_shard_suspects 0 "node1 never readmitted the rejoined member"

# Readmission triggers a re-replication sweep on each survivor; once
# both sweeps complete with nothing pending, the rejoined node's arc has
# been streamed back to it.
for i in $(seq 1 300); do
  s0=$(metric "$OPS0" spmt_shard_replication_sweeps_total | cut -d. -f1)
  s1=$(metric "$OPS1" spmt_shard_replication_sweeps_total | cut -d. -f1)
  p0=$(metric "$OPS0" spmt_shard_replication_pending | cut -d. -f1)
  p1=$(metric "$OPS1" spmt_shard_replication_pending | cut -d. -f1)
  if [ "$s0" -gt "$sweeps0" ] && [ "$s1" -gt "$sweeps1" ] && [ "$p0" = 0 ] && [ "$p1" = 0 ]; then break; fi
  if [ "$i" = 300 ]; then fail "re-replication sweeps never converged after rejoin"; fi
  sleep 0.1
done
received=$(metric "$OPS2" spmt_shard_replication_received_total | cut -d. -f1)
[ "$received" -gt 0 ] || fail "rejoined node received no re-replicated artifact"
for port in "$OPS0" "$OPS1" "$OPS2"; do
  [ "$(metric "$port" spmt_shard_replication_sweep_errors_total | cut -d. -f1)" = 0 ] ||
    fail "re-replication sweep recorded errors on ops $port"
done

# The rejoined node is a full entry point again — and because its arc
# was streamed back, the suite still costs zero pipeline recompute
# anywhere, including on the empty-booted node itself.
run_suite "http://127.0.0.1:$API2" "$LOG/rejoined"
compare_suite "$LOG/rejoined" "$LOG/ref" "rejoined entry node2"
runs2=$(pipeline_runs "$OPS2")
[ "$runs2" = 0 ] || fail "rejoined node ran $runs2 pipeline jobs; re-replication must have made its arc warm"

# --- Fault injection: restart the member with seeded peer-latency ------
# faults on its outbound transport. Half its peer calls stall 100ms,
# yet every response it serves as an entry point must stay
# byte-identical — latency degrades, bytes never do.
{ kill -9 "$NODE2_PID" && wait "$NODE2_PID"; } 2>/dev/null || true
wait_metric "$OPS0" spmt_shard_suspects 1 "node0 never suspected the restarting member"
start_node 2 "$API2" "$OPS2" -join "http://127.0.0.1:$API0" \
  -fault-inject 'peer.latency:0.5:100ms' -fault-seed 42
wait_up "http://127.0.0.1:$OPS2/readyz" "fault-injected ops $OPS2"
wait_metric "$OPS0" spmt_shard_suspects 0 "node0 never readmitted the fault-injected member"
run_suite "http://127.0.0.1:$API2" "$LOG/faulty"
compare_suite "$LOG/faulty" "$LOG/ref" "fault-injected entry node2"
decisions=$(curl -fsS "http://127.0.0.1:$OPS2/metrics" |
  awk '/^spmt_fault_decisions_total\{/{s+=$2} END{print s+0}' | cut -d. -f1)
[ "$decisions" -gt 0 ] || fail "fault injector made no peer-call decisions on the injected node"

# The parity phases above all ran with -speculate armed; prove the
# predictor actually engaged (the suite replays its own request stream,
# so the second pass through each entry node must predict).
predictions=0
for port in "$OPS0" "$OPS1" "$OPS2"; do
  predictions=$((predictions + $(metric "$port" spmt_spec_predictions_total | cut -d. -f1)))
done
[ "$predictions" -gt 0 ] || fail "no node made a speculation prediction; the parity phases proved nothing about -speculate"

echo "cluster_chaos_smoke: OK (received=$received after rejoin; zero recompute degraded/rejoined; $decisions fault decisions under injected latency; $predictions speculation predictions)"
