#!/usr/bin/env bash
# bench_reach.sh — runs the reach/linalg benchmarks and records the
# perf trajectory in BENCH_reach.json at the repo root, so the
# shared-factorisation engine's speedup and allocation profile are
# tracked across PRs.
#
# Usage:
#   scripts/bench_reach.sh [output.json] [baseline.json]
#   BENCHTIME=1x scripts/bench_reach.sh     # quick smoke mode
#   BENCHTIME=3x scripts/bench_reach.sh /tmp/fresh.json BENCH_reach.json  # CI gate
#
# The summary block compares the shared-factorisation engine against
# the per-source-factorisation reference on the medium (n=128) CFG —
# the acceptance numbers for the O(n⁴)→O(n³) rewrite.
#
# When a baseline is given, the freshly-generated JSON is diffed
# against it and the script exits nonzero if any benchmark regressed
# by more than 2x ns/op, or if any baseline name is missing from the
# fresh output (a renamed benchmark must update the baseline, not
# silently leave the gate). Benchmarks whose baseline is under
# MIN_GATE_NS (default 1ms) are exempt from the ratio check only: at
# CI's few-iteration benchtime a micro-benchmark's measurement is
# dominated by timer and warm-up noise, and gating on it would flake.
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-1s}"
out="${1:-BENCH_reach.json}"
baseline="${2:-}"
min_gate_ns="${MIN_GATE_NS:-1000000}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test ./internal/reach ./internal/linalg -run '^$' \
  -bench 'BenchmarkReach|BenchmarkLinalg' -benchmem -benchtime "$benchtime" \
  | tee "$tmp"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v gover="$(go version | { read -r _ _ v _; echo "$v"; })" \
    -v benchtime="$benchtime" '
/^Benchmark/ && /ns\/op/ {
  name = $1; sub(/-[0-9]+$/, "", name)
  ns = $3; bytes = $5; allocs = $7
  n++
  lines[n] = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
                     name, ns, bytes, allocs)
  if (name == "BenchmarkReach/shared/n=128") { sns = ns; sal = allocs }
  if (name == "BenchmarkReach/direct/n=128") { dns = ns; dal = allocs }
}
END {
  printf("{\n")
  printf("  \"generated\": \"%s\",\n", date)
  printf("  \"go\": \"%s\",\n", gover)
  printf("  \"benchtime\": \"%s\",\n", benchtime)
  printf("  \"benchmarks\": [\n")
  for (i = 1; i <= n; i++) printf("%s%s\n", lines[i], (i < n) ? "," : "")
  printf("  ]")
  if (sns > 0 && dns > 0) {
    printf(",\n  \"summary\": {\n")
    printf("    \"medium_cfg_nodes\": 128,\n")
    printf("    \"shared_ns_per_op\": %s,\n", sns)
    printf("    \"direct_ns_per_op\": %s,\n", dns)
    printf("    \"speedup_shared_vs_direct\": %.2f,\n", dns / sns)
    printf("    \"shared_allocs_per_op\": %s,\n", sal)
    printf("    \"direct_allocs_per_op\": %s,\n", dal)
    printf("    \"alloc_reduction_pct\": %.2f\n", 100 * (1 - sal / dal))
    printf("  }\n")
  } else {
    printf("\n")
  }
  printf("}\n")
}' "$tmp" > "$out"

echo "wrote $out"

if [ -n "$baseline" ]; then
  if [ ! -f "$baseline" ]; then
    echo "bench_reach.sh: baseline $baseline not found" >&2
    exit 1
  fi
  echo "checking $out against baseline $baseline (fail on >2x ns/op, baseline >= ${min_gate_ns}ns)"
  awk -v min_ns="$min_gate_ns" '
  # Both files use one benchmark entry per line:
  #   {"name": "...", "ns_per_op": N, ...}
  /"name":/ {
    line = $0
    gsub(/.*"name": "/, "", line); name = line; gsub(/".*/, "", name)
    line = $0
    gsub(/.*"ns_per_op": /, "", line); gsub(/,.*/, "", line); ns = line + 0
    if (FILENAME == ARGV[1]) base[name] = ns
    else fresh[name] = ns
  }
  END {
    bad = 0
    for (name in fresh) {
      if (!(name in base)) continue
      if (base[name] < min_ns) continue
      ratio = fresh[name] / base[name]
      if (ratio > 2.0) {
        printf("REGRESSION %s: %.0f ns/op vs baseline %.0f (%.2fx)\n", name, fresh[name], base[name], ratio)
        bad = 1
      } else {
        printf("ok %s: %.2fx baseline\n", name, ratio)
      }
    }
    # Every committed baseline name must appear in the fresh run —
    # including the sub-1ms ones exempt from the ratio gate. A renamed
    # or deleted benchmark must update the baseline explicitly, not
    # silently fall out of the gate.
    for (name in base) {
      if (!(name in fresh)) {
        printf("MISSING benchmark %s disappeared from fresh run\n", name)
        bad = 1
      }
    }
    exit bad
  }' "$baseline" "$out"
  echo "perf gate passed"
fi
