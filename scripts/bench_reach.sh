#!/usr/bin/env bash
# bench_reach.sh — runs the reach/linalg benchmarks and records the
# perf trajectory in BENCH_reach.json at the repo root, so the
# shared-factorisation engine's speedup and allocation profile are
# tracked across PRs.
#
# Usage:
#   scripts/bench_reach.sh [output.json]
#   BENCHTIME=1x scripts/bench_reach.sh     # quick CI mode
#
# The summary block compares the shared-factorisation engine against
# the per-source-factorisation reference on the medium (n=128) CFG —
# the acceptance numbers for the O(n⁴)→O(n³) rewrite.
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-1s}"
out="${1:-BENCH_reach.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test ./internal/reach ./internal/linalg -run '^$' \
  -bench 'BenchmarkReach|BenchmarkLinalg' -benchmem -benchtime "$benchtime" \
  | tee "$tmp"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v gover="$(go version | { read -r _ _ v _; echo "$v"; })" \
    -v benchtime="$benchtime" '
/^Benchmark/ && /ns\/op/ {
  name = $1; sub(/-[0-9]+$/, "", name)
  ns = $3; bytes = $5; allocs = $7
  n++
  lines[n] = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
                     name, ns, bytes, allocs)
  if (name == "BenchmarkReach/shared/n=128") { sns = ns; sal = allocs }
  if (name == "BenchmarkReach/direct/n=128") { dns = ns; dal = allocs }
}
END {
  printf("{\n")
  printf("  \"generated\": \"%s\",\n", date)
  printf("  \"go\": \"%s\",\n", gover)
  printf("  \"benchtime\": \"%s\",\n", benchtime)
  printf("  \"benchmarks\": [\n")
  for (i = 1; i <= n; i++) printf("%s%s\n", lines[i], (i < n) ? "," : "")
  printf("  ]")
  if (sns > 0 && dns > 0) {
    printf(",\n  \"summary\": {\n")
    printf("    \"medium_cfg_nodes\": 128,\n")
    printf("    \"shared_ns_per_op\": %s,\n", sns)
    printf("    \"direct_ns_per_op\": %s,\n", dns)
    printf("    \"speedup_shared_vs_direct\": %.2f,\n", dns / sns)
    printf("    \"shared_allocs_per_op\": %s,\n", sal)
    printf("    \"direct_allocs_per_op\": %s,\n", dal)
    printf("    \"alloc_reduction_pct\": %.2f\n", 100 * (1 - sal / dal))
    printf("  }\n")
  } else {
    printf("\n")
  }
  printf("}\n")
}' "$tmp" > "$out"

echo "wrote $out"
