#!/usr/bin/env bash
# bench_sched.sh — runs the end-to-end scheduler sweep benchmarks and
# records the trajectory in BENCH_sched.json at the repo root: one
# mixed batch sweep (pipeline build + sim grid over four benches) at
# worker budgets 1, N/2, and N on the unified work-stealing scheduler,
# plus the pool-per-level seed topology at the full budget.
#
# Usage:
#   scripts/bench_sched.sh [output.json] [baseline.json]
#   BENCHTIME=1x scripts/bench_sched.sh     # quick smoke mode
#   BENCHTIME=2x scripts/bench_sched.sh /tmp/fresh.json BENCH_sched.json  # CI gate
#
# The summary block compares the unified scheduler against the
# three-pool baseline at equal core budget — the acceptance number for
# the one-budget rewire. On a single-core runner the two coincide
# (both collapse to serial); the speedup is meaningful on multi-core.
#
# When a baseline is given, the freshly-generated JSON is diffed
# against it and the script exits nonzero if any benchmark regressed
# by more than 2x ns/op, or if any baseline name is missing from the
# fresh output. Benchmarks whose baseline is under MIN_GATE_NS
# (default 1ms) are exempt from the ratio check only.
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-1x}"
out="${1:-BENCH_sched.json}"
baseline="${2:-}"
min_gate_ns="${MIN_GATE_NS:-1000000}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test ./internal/expt -run '^$' \
  -bench 'BenchmarkSchedSweep' -benchmem -benchtime "$benchtime" \
  | tee "$tmp"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v gover="$(go version | { read -r _ _ v _; echo "$v"; })" \
    -v benchtime="$benchtime" '
/^Benchmark/ && /ns\/op/ {
  name = $1; sub(/-[0-9]+$/, "", name)
  ns = $3; bytes = $5; allocs = $7
  n++
  lines[n] = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
                     name, ns, bytes, allocs)
  if (name == "BenchmarkSchedSweep/unified/w=full") uns = ns
  if (name == "BenchmarkSchedSweep/threepool/w=full") tns = ns
  if (name == "BenchmarkSchedSweep/unified/w=1") sns = ns
}
END {
  printf("{\n")
  printf("  \"generated\": \"%s\",\n", date)
  printf("  \"go\": \"%s\",\n", gover)
  printf("  \"benchtime\": \"%s\",\n", benchtime)
  printf("  \"benchmarks\": [\n")
  for (i = 1; i <= n; i++) printf("%s%s\n", lines[i], (i < n) ? "," : "")
  printf("  ]")
  if (uns > 0 && tns > 0 && sns > 0) {
    printf(",\n  \"summary\": {\n")
    printf("    \"unified_full_ns_per_op\": %s,\n", uns)
    printf("    \"threepool_full_ns_per_op\": %s,\n", tns)
    printf("    \"speedup_unified_vs_threepool\": %.2f,\n", tns / uns)
    printf("    \"serial_ns_per_op\": %s,\n", sns)
    printf("    \"speedup_full_vs_serial\": %.2f\n", sns / uns)
    printf("  }\n")
  } else {
    printf("\n")
  }
  printf("}\n")
}' "$tmp" > "$out"

echo "wrote $out"

if [ -n "$baseline" ]; then
  if [ ! -f "$baseline" ]; then
    echo "bench_sched.sh: baseline $baseline not found" >&2
    exit 1
  fi
  echo "checking $out against baseline $baseline (fail on >2x ns/op, baseline >= ${min_gate_ns}ns)"
  awk -v min_ns="$min_gate_ns" '
  # Both files use one benchmark entry per line:
  #   {"name": "...", "ns_per_op": N, ...}
  /"name":/ {
    line = $0
    gsub(/.*"name": "/, "", line); name = line; gsub(/".*/, "", name)
    line = $0
    gsub(/.*"ns_per_op": /, "", line); gsub(/,.*/, "", line); ns = line + 0
    if (FILENAME == ARGV[1]) base[name] = ns
    else fresh[name] = ns
  }
  END {
    bad = 0
    for (name in fresh) {
      if (!(name in base)) continue
      if (base[name] < min_ns) continue
      ratio = fresh[name] / base[name]
      if (ratio > 2.0) {
        printf("REGRESSION %s: %.0f ns/op vs baseline %.0f (%.2fx)\n", name, fresh[name], base[name], ratio)
        bad = 1
      } else {
        printf("ok %s: %.2fx baseline\n", name, ratio)
      }
    }
    # Every committed baseline name must appear in the fresh run — a
    # renamed or deleted benchmark must update the baseline explicitly,
    # not silently fall out of the gate.
    for (name in base) {
      if (!(name in fresh)) {
        printf("MISSING benchmark %s disappeared from fresh run\n", name)
        bad = 1
      }
    }
    exit bad
  }' "$baseline" "$out"
  echo "perf gate passed"
fi
