// Command spmt-profile runs the profile analysis for one benchmark and
// dumps the artefacts: hot basic blocks, the pruned dynamic CFG, and
// the selected spawning pairs with their reaching probabilities,
// expected distances, and live-in sets (the Figure 2 view).
//
// Usage:
//
//	spmt-profile -bench gcc [-size small] [-pairs 25] [-blocks 20]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro"
	"repro/internal/core"
)

func main() {
	bench := flag.String("bench", "gcc", "benchmark name")
	sizeFlag := flag.String("size", "small", "workload size: test, small, full")
	nPairs := flag.Int("pairs", 25, "number of selected pairs to print")
	nBlocks := flag.Int("blocks", 15, "number of hot blocks to print")
	flag.Parse()

	size, err := spmt.ParseSize(*sizeFlag)
	check(err)
	prog, err := spmt.Generate(*bench, size)
	check(err)
	art, err := spmt.Analyze(prog, spmt.AnalyzeConfig{})
	check(err)

	fmt.Printf("benchmark %s: %d static / %d dynamic instructions, %d basic blocks profiled\n",
		*bench, prog.Len(), art.Trace.Len(), len(art.Profile.Leaders))
	fmt.Printf("pruned CFG: %d nodes covering %.1f%% of dynamic instructions\n\n",
		len(art.Graph.Nodes), 100*art.Graph.Coverage)

	fmt.Printf("hottest blocks:\n")
	type hot struct {
		pc     uint32
		instrs float64
	}
	var hots []hot
	for i := range art.Graph.Nodes {
		n := &art.Graph.Nodes[i]
		hots = append(hots, hot{n.PC, n.Instrs()})
	}
	sort.Slice(hots, func(a, b int) bool { return hots[a].instrs > hots[b].instrs })
	for i := 0; i < *nBlocks && i < len(hots); i++ {
		fn := "?"
		if f := prog.FuncAt(hots[i].pc); f != nil {
			fn = f.Name
		}
		fmt.Printf("  pc %6d  %-14s %10.0f dynamic instructions\n", hots[i].pc, fn, hots[i].instrs)
	}

	tab, err := spmt.SelectPairs(art, spmt.SelectConfig{})
	check(err)
	fmt.Printf("\nspawning pairs: %d candidates passed thresholds, %d selected (distinct SPs)\n",
		tab.TotalCandidates, tab.Len())

	pairs := append([]core.Pair(nil), tab.Primary...)
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].Dist > pairs[b].Dist })
	fmt.Printf("\n%-9s %7s %7s %6s %8s %6s %6s  %s\n",
		"kind", "SP", "CQIP", "prob", "distance", "indep", "pred", "live-ins")
	for i := 0; i < *nPairs && i < len(pairs); i++ {
		p := pairs[i]
		fmt.Printf("%-9s %7d %7d %6.3f %8.1f %6.1f %6.1f  %v\n",
			p.Kind, p.SP, p.CQIP, p.Prob, p.Dist, p.AvgIndep, p.AvgPred, p.LiveIns)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "spmt-profile:", err)
		os.Exit(1)
	}
}
