// Command spmt-server serves the paper's analysis pipeline and
// Clustered SpMT simulator over HTTP/JSON. All requests share one
// concurrent job engine, so identical or overlapping work — across
// endpoints and across clients — is deduplicated in flight and repeat
// requests hit the tiered artifact store: an in-memory LRU backed by
// an optional on-disk tier (-store-dir), which survives restarts and
// warms the memory tier at boot, so a restarted server answers
// previously-seen requests without re-running emulation.
//
// Peer mode (-self + -peers) joins the process to a shard cluster: a
// consistent-hash ring over the member list assigns every artifact key
// an owning node, requests to any node are routed to their owner (so
// any node is a valid entry point), shards exchange computed artifact
// images over GET /v1/artifacts instead of recomputing, and a node
// whose owner is down answers by local compute. Every member must be
// started with the same -peers list.
//
// Observability: every /v1 request runs under a trace (X-Spmt-Trace,
// queryable via GET /v1/traces/{id}, stitched across shards), and
// -ops-addr opens a second listener serving /metrics (Prometheus text
// exposition), /healthz, and /debug/pprof — kept off the client port
// so profiling is never exposed to API consumers. Logs are structured
// (log/slog) and carry the trace ID where one applies.
//
// Usage:
//
//	spmt-server [-addr :8080] [-ops-addr :9090] [-parallel N] [-cache-entries N] [-cache-bytes 512MB]
//	            [-store-dir /var/lib/spmt] [-store-bytes 4GB]
//	            [-self http://host0:8080 -peers http://host0:8080,http://host1:8080,… [-vnodes 128]]
//
// Endpoints:
//
//	POST /v1/analyze      {"bench":"ijpeg","size":"test"}
//	POST /v1/pairs        {"bench":"ijpeg","policy":"profile"}
//	POST /v1/simulate     {"bench":"ijpeg","policy":"profile","tus":16,"predictor":"stride"}
//	POST /v1/batch        {"size":"test","sweep":{"benches":["ijpeg"],"tus":[1,2,4,8,16]}}
//	GET  /v1/figures/fig3?size=test&bench=compress,ijpeg
//	GET  /v1/stats
//	GET  /v1/traces[/{id}]
//	GET  /metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/engine/codec"
	"repro/internal/server"
	"repro/internal/shard"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	opsAddr := flag.String("ops-addr", "", "ops listen address for /metrics, /healthz and /debug/pprof (empty = disabled)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "engine worker-pool size")
	cacheEntries := flag.Int("cache-entries", engine.DefaultCacheEntries, "artifact-cache capacity (entries)")
	cacheBytes := flag.String("cache-bytes", "", "memory-tier resident-byte budget, e.g. 512MB (empty = unbounded)")
	storeDir := flag.String("store-dir", "", "disk-tier directory for persistent artifacts (empty = memory-only)")
	storeBytes := flag.String("store-bytes", "", "disk-tier byte budget, e.g. 4GB (empty = unbounded)")
	self := flag.String("self", "", "this node's URL as peers reach it, e.g. http://host0:8080 (enables peer mode)")
	peers := flag.String("peers", "", "comma-separated URLs of every cluster member, including -self")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per member on the consistent-hash ring (0 = default)")
	flag.Parse()

	if *parallel < 1 {
		fmt.Fprintln(os.Stderr, "spmt-server: -parallel must be >= 1")
		os.Exit(2)
	}
	var cl *shard.Cluster
	if (*self == "") != (*peers == "") {
		fmt.Fprintln(os.Stderr, "spmt-server: peer mode needs both -self and -peers")
		os.Exit(2)
	}
	if *self != "" {
		members := strings.Split(*peers, ",")
		var err error
		cl, err = shard.New(*self, members, shard.Options{VNodes: *vnodes})
		if err != nil {
			fmt.Fprintf(os.Stderr, "spmt-server: %v\n", err)
			os.Exit(2)
		}
	}
	maxBytes := parseBytesFlag("-cache-bytes", *cacheBytes)
	opts := engine.Options{Workers: *parallel, CacheEntries: *cacheEntries, CacheBytes: maxBytes}
	if *storeDir != "" {
		disk, err := engine.OpenDiskTier(*storeDir, parseBytesFlag("-store-bytes", *storeBytes), codec.New())
		if err != nil {
			fmt.Fprintf(os.Stderr, "spmt-server: -store-dir: %v\n", err)
			os.Exit(2)
		}
		opts.Disk = disk
	} else if *storeBytes != "" {
		fmt.Fprintln(os.Stderr, "spmt-server: -store-bytes needs -store-dir")
		os.Exit(2)
	}
	if cl != nil {
		opts.Remote = shard.NewFetcher(cl, codec.New())
	}
	eng := engine.New(opts)
	if *storeDir != "" {
		start := time.Now()
		n := eng.WarmFromDisk()
		slog.Info("warmed artifacts from disk",
			"artifacts", n, "dir", *storeDir, "took", time.Since(start).Round(time.Millisecond))
	}
	srv := server.NewCluster(eng, cl)
	if cl != nil {
		slog.Info("peer mode",
			"self", cl.Self(), "members", cl.Members(), "vnodes", cl.Ring().VNodes())
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		// Full-size figure sweeps are legitimately slow; no write
		// timeout.
	}
	var ops *http.Server
	if *opsAddr != "" {
		ops = &http.Server{
			Addr:              *opsAddr,
			Handler:           srv.OpsHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		slog.Info("ops listener", "addr", *opsAddr)
		go func() {
			if err := ops.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				slog.Error("ops listener failed", "addr", *opsAddr, "err", err)
				os.Exit(1)
			}
		}()
	}
	slog.Info("listening",
		"addr", *addr, "workers", eng.Workers(), "cache_entries", *cacheEntries,
		"cache_bytes", orUnbounded(*cacheBytes), "store", orMemoryOnly(*storeDir))

	// Graceful shutdown: stop accepting requests, then drain the disk
	// tier's async-write queue so every computed artifact is durable
	// for the next boot's warm-up. The ops listener stays up while the
	// API drains (a last scrape sees the drain), then follows.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case sig := <-stop:
		slog.Info("shutting down", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			slog.Warn("shutdown incomplete", "err", err)
		}
		eng.Close()
		if ops != nil {
			if err := ops.Shutdown(ctx); err != nil {
				slog.Warn("ops shutdown incomplete", "err", err)
			}
		}
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			slog.Error("listener failed", "err", err)
			os.Exit(1)
		}
	}
}

// parseBytesFlag parses a byte-size flag, exiting with a usage error
// on malformed input. Empty means unbounded (0).
func parseBytesFlag(name, val string) int64 {
	if val == "" {
		return 0
	}
	b, err := engine.ParseBytes(val)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spmt-server: %s: %v\n", name, err)
		os.Exit(2)
	}
	return b
}

func orUnbounded(s string) string {
	if s == "" {
		return "unbounded"
	}
	return s
}

func orMemoryOnly(s string) string {
	if s == "" {
		return "memory-only"
	}
	return s
}
