// Command spmt-server serves the paper's analysis pipeline and
// Clustered SpMT simulator over HTTP/JSON. All requests share one
// concurrent job engine, so identical or overlapping work — across
// endpoints and across clients — is deduplicated in flight and repeat
// requests hit the content-keyed artifact cache.
//
// Usage:
//
//	spmt-server [-addr :8080] [-parallel N] [-cache-entries N] [-cache-bytes 512MB]
//
// Endpoints:
//
//	POST /v1/analyze      {"bench":"ijpeg","size":"test"}
//	POST /v1/pairs        {"bench":"ijpeg","policy":"profile"}
//	POST /v1/simulate     {"bench":"ijpeg","policy":"profile","tus":16,"predictor":"stride"}
//	GET  /v1/figures/fig3?size=test&bench=compress,ijpeg
//	GET  /v1/stats
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "engine worker-pool size")
	cacheEntries := flag.Int("cache-entries", engine.DefaultCacheEntries, "artifact-cache capacity (entries)")
	cacheBytes := flag.String("cache-bytes", "", "artifact-cache resident-byte budget, e.g. 512MB (empty = unbounded)")
	flag.Parse()

	if *parallel < 1 {
		fmt.Fprintln(os.Stderr, "spmt-server: -parallel must be >= 1")
		os.Exit(2)
	}
	var maxBytes int64
	if *cacheBytes != "" {
		var err error
		if maxBytes, err = engine.ParseBytes(*cacheBytes); err != nil {
			fmt.Fprintf(os.Stderr, "spmt-server: -cache-bytes: %v\n", err)
			os.Exit(2)
		}
	}
	eng := engine.New(engine.Options{Workers: *parallel, CacheEntries: *cacheEntries, CacheBytes: maxBytes})
	srv := server.New(eng)

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		// Full-size figure sweeps are legitimately slow; no write
		// timeout.
	}
	log.Printf("spmt-server: listening on %s (workers=%d, cache=%d entries, cache-bytes=%s)",
		*addr, eng.Workers(), *cacheEntries, orUnbounded(*cacheBytes))
	if err := hs.ListenAndServe(); err != nil {
		log.Fatalf("spmt-server: %v", err)
	}
}

func orUnbounded(s string) string {
	if s == "" {
		return "unbounded"
	}
	return s
}
