// Command spmt-server serves the paper's analysis pipeline and
// Clustered SpMT simulator over HTTP/JSON. All requests share one
// concurrent job engine, so identical or overlapping work — across
// endpoints and across clients — is deduplicated in flight and repeat
// requests hit the tiered artifact store: an in-memory LRU backed by
// an optional on-disk tier (-store-dir), which survives restarts and
// warms the memory tier at boot, so a restarted server answers
// previously-seen requests without re-running emulation.
//
// Peer mode (-self + -peers, or -self + -join) joins the process to a
// shard cluster: a consistent-hash ring over the member list assigns
// every artifact key an owning node, requests to any node are routed
// to their owner (so any node is a valid entry point), shards exchange
// computed artifact images over GET /v1/artifacts instead of
// recomputing, and a node whose owner is down answers by local
// compute. -peers seeds the boot membership; -join instead asks an
// existing member to admit this node and inherits the cluster's
// current membership — membership is LIVE after boot (join/leave
// endpoints, gossip, health-probe suspicion), so the lists need not
// stay identical across members.
//
// With -replicas 2 (the default) every key is owned by a primary plus
// the next distinct node on the ring: computed artifacts are pushed to
// both asynchronously, degraded reads retry the replica before
// computing locally, and any membership change triggers a background
// re-replication sweep — so a single node death costs neither
// availability nor recompute.
//
// Observability: every /v1 request runs under a trace (X-Spmt-Trace,
// queryable via GET /v1/traces/{id}, stitched across shards), and
// -ops-addr opens a second listener serving /metrics (Prometheus text
// exposition), /healthz (liveness), /readyz (readiness: 503 while
// draining or admission-saturated), and /debug/pprof — kept off the
// client port so profiling is never exposed to API consumers. Logs are
// structured (log/slog) and carry the trace ID where one applies.
//
// Overload safety: cold computes pass a weighted admission gate
// (-admit-capacity, on by default at 4×parallel) and shed with 429 +
// Retry-After when the bounded queue is full; warm, store-resolvable
// requests bypass the gate. -default-deadline mints a cluster-wide
// time budget per request (propagated and decremented across every
// forward/fan-out/fetch leg via X-Spmt-Deadline; exhaustion is a 504),
// and a per-peer circuit breaker fast-fails calls to nodes that keep
// failing, falling back to the replica or local compute.
//
// Usage:
//
//	spmt-server [-addr :8080] [-ops-addr :9090] [-parallel N] [-cache-entries N] [-cache-bytes 512MB]
//	            [-store-dir /var/lib/spmt] [-store-bytes 4GB]
//	            [-self http://host0:8080 -peers http://host0:8080,http://host1:8080,… [-vnodes 128]]
//
// Endpoints:
//
//	POST /v1/analyze      {"bench":"ijpeg","size":"test"}
//	POST /v1/pairs        {"bench":"ijpeg","policy":"profile"}
//	POST /v1/simulate     {"bench":"ijpeg","policy":"profile","tus":16,"predictor":"stride"}
//	POST /v1/batch        {"size":"test","sweep":{"benches":["ijpeg"],"tus":[1,2,4,8,16]}}
//	GET  /v1/figures/fig3?size=test&bench=compress,ijpeg
//	GET  /v1/stats
//	GET  /v1/traces[/{id}]
//	GET  /metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/engine/codec"
	"repro/internal/fault"
	"repro/internal/server"
	"repro/internal/shard"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	opsAddr := flag.String("ops-addr", "", "ops listen address for /metrics, /healthz and /debug/pprof (empty = disabled)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "scheduler core budget shared by every parallelism level (jobs, reach sources, GEMM tiles)")
	workersFlag := flag.Int("workers", 0, "deprecated alias for -parallel")
	cacheEntries := flag.Int("cache-entries", engine.DefaultCacheEntries, "artifact-cache capacity (entries)")
	cacheBytes := flag.String("cache-bytes", "", "memory-tier resident-byte budget, e.g. 512MB (empty = unbounded)")
	storeDir := flag.String("store-dir", "", "disk-tier directory for persistent artifacts (empty = memory-only)")
	storeBytes := flag.String("store-bytes", "", "disk-tier byte budget, e.g. 4GB (empty = unbounded)")
	self := flag.String("self", "", "this node's URL as peers reach it, e.g. http://host0:8080 (enables peer mode)")
	peers := flag.String("peers", "", "comma-separated URLs of the boot membership, including -self")
	join := flag.String("join", "", "URL of an existing member to join through (alternative to -peers)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per member on the consistent-hash ring (0 = default)")
	replicas := flag.Int("replicas", 0, "copies per key incl. the primary (0 = default 2; 1 disables replication)")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "peer health-probe period")
	probeTimeout := flag.Duration("probe-timeout", time.Second, "single health-probe deadline")
	probeFailures := flag.Int("probe-failures", 3, "consecutive probe failures before a peer is suspected")
	defaultDeadline := flag.Duration("default-deadline", 0, "per-request time budget minted for /v1 requests without an X-Spmt-Deadline header, propagated cluster-wide (0 = none)")
	admitCapacity := flag.Int("admit-capacity", 0, "weighted concurrency for cold computes (0 = auto: 4*parallel; negative disables admission)")
	admitQueue := flag.Int("admit-queue", 0, "bounded admission wait-queue length (0 = 4*capacity)")
	admitMaxWait := flag.Duration("admit-max-wait", 0, "max time one request may queue for admission (0 = 2s)")
	breakerFailures := flag.Int("breaker-failures", 0, "consecutive peer failures before its circuit opens (0 = default 5; negative disables)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "open-circuit cooldown before a half-open probe (0 = default 2s)")
	speculate := flag.Bool("speculate", false, "speculatively precompute predicted artifacts on idle workers (responses are byte-identical either way)")
	replRepair := flag.Duration("repl-repair-interval", 0, "replication drop-repair tick period (0 = 2s)")
	faultInject := flag.String("fault-inject", "", "TESTING ONLY: deterministic fault spec, e.g. 'disk.read:0.1,peer.latency:0.5:100ms'")
	faultSeed := flag.Uint64("fault-seed", 1, "TESTING ONLY: seed for -fault-inject decisions")
	flag.Parse()

	inj, err := fault.Parse(*faultInject, *faultSeed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spmt-server: -fault-inject: %v\n", err)
		os.Exit(2)
	}
	if inj != nil {
		slog.Warn("fault injection enabled (testing only)", "spec", *faultInject, "seed", *faultSeed)
	}

	if *workersFlag != 0 {
		slog.Warn("-workers is deprecated; use -parallel (one scheduler budget for every parallelism level)")
		parallelSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "parallel" {
				parallelSet = true
			}
		})
		if !parallelSet {
			*parallel = *workersFlag
		}
	}
	if *parallel < 1 {
		fmt.Fprintln(os.Stderr, "spmt-server: -parallel must be >= 1")
		os.Exit(2)
	}
	var cl *shard.Cluster
	if *self == "" && (*peers != "" || *join != "") {
		fmt.Fprintln(os.Stderr, "spmt-server: peer mode needs -self")
		os.Exit(2)
	}
	if *self != "" && *peers == "" && *join == "" {
		fmt.Fprintln(os.Stderr, "spmt-server: peer mode needs -peers or -join")
		os.Exit(2)
	}
	if *self != "" {
		// -join boots a single-member view; the join call below (after
		// the listener is up) inherits the seed's membership.
		members := []string{*self}
		if *peers != "" {
			members = strings.Split(*peers, ",")
		}
		sopts := shard.Options{
			VNodes:          *vnodes,
			Replicas:        *replicas,
			BreakerFailures: *breakerFailures,
			BreakerCooldown: *breakerCooldown,
		}
		if inj != nil {
			sopts.WrapTransport = inj.Transport
		}
		var err error
		cl, err = shard.New(*self, members, sopts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spmt-server: %v\n", err)
			os.Exit(2)
		}
	}
	maxBytes := parseBytesFlag("-cache-bytes", *cacheBytes)
	opts := engine.Options{Workers: *parallel, CacheEntries: *cacheEntries, CacheBytes: maxBytes}
	if *storeDir != "" {
		disk, err := engine.OpenDiskTier(*storeDir, parseBytesFlag("-store-bytes", *storeBytes), codec.New())
		if err != nil {
			fmt.Fprintf(os.Stderr, "spmt-server: -store-dir: %v\n", err)
			os.Exit(2)
		}
		if inj != nil {
			disk.SetFaults(inj)
		}
		opts.Disk = disk
	} else if *storeBytes != "" {
		fmt.Fprintln(os.Stderr, "spmt-server: -store-bytes needs -store-dir")
		os.Exit(2)
	}
	var repl *shard.Replicator
	if cl != nil {
		opts.Remote = shard.NewFetcher(cl, codec.New())
		if cl.Replicas() > 1 {
			repl = shard.NewReplicator(cl, codec.New())
			opts.Replicate = repl
		}
	}
	eng := engine.New(opts)
	if *storeDir != "" {
		start := time.Now()
		n := eng.WarmFromDisk()
		slog.Info("warmed artifacts from disk",
			"artifacts", n, "dir", *storeDir, "took", time.Since(start).Round(time.Millisecond))
	}
	capacity := *admitCapacity
	if capacity == 0 {
		capacity = 4 * *parallel
	}
	if capacity < 0 {
		capacity = 0 // admission disabled
	}
	srv := server.NewWithConfig(eng, cl, server.Config{
		DefaultDeadline:    *defaultDeadline,
		AdmitCapacity:      capacity,
		AdmitQueue:         *admitQueue,
		AdmitMaxWait:       *admitMaxWait,
		Fault:              inj,
		Speculate:          *speculate,
		ReplRepairInterval: *replRepair,
	})
	var prober *shard.Prober
	if cl != nil {
		slog.Info("peer mode",
			"self", cl.Self(), "members", cl.Members(), "vnodes", cl.Ring().VNodes(),
			"replicas", cl.Replicas())
		prober = shard.StartProber(cl, shard.ProberOptions{
			Interval: *probeInterval,
			Timeout:  *probeTimeout,
			Failures: *probeFailures,
		})
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		// Full-size figure sweeps are legitimately slow; no write
		// timeout.
	}
	var ops *http.Server
	if *opsAddr != "" {
		ops = &http.Server{
			Addr:              *opsAddr,
			Handler:           srv.OpsHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		slog.Info("ops listener", "addr", *opsAddr)
		go func() {
			if err := ops.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				slog.Error("ops listener failed", "addr", *opsAddr, "err", err)
				os.Exit(1)
			}
		}()
	}
	slog.Info("listening",
		"addr", *addr, "workers", eng.Workers(), "cache_entries", *cacheEntries,
		"cache_bytes", orUnbounded(*cacheBytes), "store", orMemoryOnly(*storeDir))

	// Graceful shutdown: stop accepting requests, then drain the disk
	// tier's async-write queue so every computed artifact is durable
	// for the next boot's warm-up. The ops listener stays up while the
	// API drains (a last scrape sees the drain), then follows.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	if cl != nil && *join != "" {
		// The listener must be up before joining: the moment the seed
		// admits us, peers start routing, probing, and re-replicating
		// to this node. A few bounded attempts absorb the listener
		// race and a seed that is itself still booting.
		go func() {
			var err error
			for attempt := 0; attempt < 10; attempt++ {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				var ms shard.Membership
				ms, err = cl.JoinVia(ctx, *join)
				cancel()
				if err == nil {
					slog.Info("joined cluster", "via", *join, "epoch", ms.Epoch, "members", ms.Members)
					return
				}
				time.Sleep(time.Second)
			}
			slog.Error("cluster join failed; serving standalone", "via", *join, "err", err)
		}()
	}
	select {
	case sig := <-stop:
		slog.Info("shutting down", "signal", sig.String())
		// Flip readiness first: /readyz answers 503 for the whole drain,
		// so load balancers stop routing before the listener closes.
		srv.SetDraining(true)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			slog.Warn("shutdown incomplete", "err", err)
		}
		// Stop cluster background work before draining the store: no
		// probe churn, no half-finished sweep racing the flush. A
		// restart reuses the node's identity, so it does NOT leave the
		// membership — the prober's suspicion covers the gap and
		// readmits it on the way back up.
		if prober != nil {
			prober.Close()
		}
		if repl != nil {
			repl.Close()
		}
		srv.Close()
		eng.Close()
		if ops != nil {
			if err := ops.Shutdown(ctx); err != nil {
				slog.Warn("ops shutdown incomplete", "err", err)
			}
		}
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			slog.Error("listener failed", "err", err)
			os.Exit(1)
		}
	}
}

// parseBytesFlag parses a byte-size flag, exiting with a usage error
// on malformed input. Empty means unbounded (0).
func parseBytesFlag(name, val string) int64 {
	if val == "" {
		return 0
	}
	b, err := engine.ParseBytes(val)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spmt-server: %s: %v\n", name, err)
		os.Exit(2)
	}
	return b
}

func orUnbounded(s string) string {
	if s == "" {
		return "unbounded"
	}
	return s
}

func orMemoryOnly(s string) string {
	if s == "" {
		return "memory-only"
	}
	return s
}
