// Command spmt-trace generates, saves, loads, and inspects dynamic
// traces in the library's binary format — useful for separating the
// (deterministic but slow) emulation step from repeated simulation
// experiments.
//
// Usage:
//
//	spmt-trace -bench gcc -size full -out gcc.trace      # emulate & save
//	spmt-trace -bench gcc -in gcc.trace -stats           # load & inspect
//	spmt-trace -bench gcc -in gcc.trace -dump 20         # first N events
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/trace"
)

func main() {
	bench := flag.String("bench", "gcc", "benchmark name (used to regenerate the program)")
	sizeFlag := flag.String("size", "small", "workload size: test, small, full")
	out := flag.String("out", "", "write the trace to this file")
	in := flag.String("in", "", "read the trace from this file instead of emulating")
	dump := flag.Int("dump", 0, "disassemble the first N trace events")
	stats := flag.Bool("stats", false, "print opcode/branch statistics")
	flag.Parse()

	size, err := spmt.ParseSize(*sizeFlag)
	check(err)
	prog, err := spmt.Generate(*bench, size)
	check(err)

	var tr *trace.Trace
	if *in != "" {
		f, err := os.Open(*in)
		check(err)
		defer f.Close()
		tr = &trace.Trace{Program: prog}
		_, err = tr.ReadFrom(bufio.NewReader(f))
		check(err)
		check(tr.Validate())
	} else {
		res, err := emu.Run(prog, emu.Config{CollectTrace: true})
		check(err)
		tr = res.Trace
	}
	fmt.Printf("%s: %d dynamic instructions\n", *bench, tr.Len())

	if *out != "" {
		f, err := os.Create(*out)
		check(err)
		w := bufio.NewWriter(f)
		n, err := tr.WriteTo(w)
		check(err)
		check(w.Flush())
		check(f.Close())
		fmt.Printf("wrote %d bytes to %s\n", n, *out)
	}

	if *stats {
		printStats(tr)
	}
	if *dump > 0 {
		for i := 0; i < *dump && i < tr.Len(); i++ {
			e := &tr.Events[i]
			ins := isa.Instruction{Op: e.Op, Dst: e.Dst, Src1: e.Src1, Src2: e.Src2}
			extra := ""
			if e.Op == isa.OpLoad || e.Op == isa.OpStore {
				extra = fmt.Sprintf("  [addr 0x%x = %d]", e.Addr, e.Val)
			} else if e.Op.WritesReg() {
				extra = fmt.Sprintf("  [r%d = %d]", e.Dst, e.Val)
			}
			fmt.Printf("%8d  pc %6d  %-24s%s\n", i, e.PC, ins.String(), extra)
		}
	}
}

func printStats(tr *trace.Trace) {
	var counts [64]int
	var branches, taken, loads, stores int
	for i := range tr.Events {
		e := &tr.Events[i]
		counts[e.Op]++
		switch {
		case e.Op.IsBranch():
			branches++
			if e.Taken() {
				taken++
			}
		case e.Op == isa.OpLoad:
			loads++
		case e.Op == isa.OpStore:
			stores++
		}
	}
	fmt.Printf("loads %d (%.1f%%)  stores %d (%.1f%%)  branches %d (%.1f%%, %.1f%% taken)\n",
		loads, pct(loads, tr.Len()), stores, pct(stores, tr.Len()),
		branches, pct(branches, tr.Len()), pct(taken, branches))
	fmt.Println("opcode mix:")
	for op := isa.Op(0); int(op) < len(counts); op++ {
		if counts[op] == 0 {
			continue
		}
		fmt.Printf("  %-6s %9d (%.1f%%)\n", op, counts[op], pct(counts[op], tr.Len()))
	}
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "spmt-trace:", err)
		os.Exit(1)
	}
}
