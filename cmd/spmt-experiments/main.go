// Command spmt-experiments regenerates the paper's evaluation: every
// figure of HPCA'02 §4 as an ASCII table (optionally CSV), over the
// synthetic SpecInt95-like suite.
//
// Usage:
//
//	spmt-experiments [-figure all|fig3|fig9b|...] [-size test|small|full]
//	                 [-bench go,gcc,...] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/expt"
	"repro/internal/workload"
)

func main() {
	figure := flag.String("figure", "all", "figure to regenerate (all, fig2, fig3, fig4, fig5a, fig5b, fig6, fig7a, fig7b, fig8, fig9a, fig9b, fig10a, fig10b, fig11, fig12)")
	sizeFlag := flag.String("size", "full", "workload size class: test, small, full")
	benchFlag := flag.String("bench", "", "comma-separated benchmark subset (default: all eight)")
	csv := flag.Bool("csv", false, "emit CSV instead of ASCII tables")
	flag.Parse()

	size, err := parseSize(*sizeFlag)
	if err != nil {
		fatal(err)
	}
	var names []string
	if *benchFlag != "" {
		names = strings.Split(*benchFlag, ",")
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "building pipeline (size=%s)...\n", size)
	suite, err := expt.NewSuite(size, names)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "pipeline ready in %v\n", time.Since(start).Round(time.Millisecond))

	ids := expt.FigureIDs()
	if *figure != "all" {
		ids = strings.Split(*figure, ",")
	}
	for _, id := range ids {
		t0 := time.Now()
		tab, err := suite.Run(strings.TrimSpace(id))
		if err != nil {
			fatal(err)
		}
		if *csv {
			if err := tab.RenderCSV(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println()
		} else if err := tab.Render(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "%s done in %v\n", id, time.Since(t0).Round(time.Millisecond))
	}
}

func parseSize(s string) (workload.SizeClass, error) {
	switch s {
	case "test":
		return workload.SizeTest, nil
	case "small":
		return workload.SizeSmall, nil
	case "full":
		return workload.SizeFull, nil
	}
	return 0, fmt.Errorf("unknown size %q (want test, small, or full)", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spmt-experiments:", err)
	os.Exit(1)
}
