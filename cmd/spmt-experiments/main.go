// Command spmt-experiments regenerates the paper's evaluation: every
// figure of HPCA'02 §4 as an ASCII table (optionally CSV), over the
// synthetic SpecInt95-like suite. The per-benchmark pipelines are built
// concurrently on the job engine (-parallel bounds the workers); the
// output is identical to a serial run.
//
// Usage:
//
//	spmt-experiments [-figure all|fig3|fig9b|...] [-size test|small|full]
//	                 [-bench go,gcc,...] [-parallel N] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/expt"
	"repro/internal/workload"
)

func main() {
	figure := flag.String("figure", "all", "figure to regenerate (all, fig2, fig3, fig4, fig5a, fig5b, fig6, fig7a, fig7b, fig8, fig9a, fig9b, fig10a, fig10b, fig11, fig12)")
	sizeFlag := flag.String("size", "full", "workload size class: test, small, full")
	benchFlag := flag.String("bench", "", "comma-separated benchmark subset (default: all eight)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "engine worker-pool size (1 = serial)")
	csv := flag.Bool("csv", false, "emit CSV instead of ASCII tables")
	flag.Parse()

	size, err := workload.ParseSize(*sizeFlag)
	if err != nil {
		fatal(err)
	}
	if *parallel < 1 {
		fatal(fmt.Errorf("-parallel must be >= 1, got %d", *parallel))
	}
	var names []string
	if *benchFlag != "" {
		names = strings.Split(*benchFlag, ",")
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "building pipeline (size=%s, workers=%d)...\n", size, *parallel)
	eng := engine.New(engine.Options{Workers: *parallel})
	suite, err := expt.NewSuiteEngine(eng, size, names)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "pipeline ready in %v\n", time.Since(start).Round(time.Millisecond))

	ids := expt.FigureIDs()
	if *figure != "all" {
		ids = strings.Split(*figure, ",")
	}
	for _, id := range ids {
		t0 := time.Now()
		tab, err := suite.Run(strings.TrimSpace(id))
		if err != nil {
			fatal(err)
		}
		if *csv {
			if err := tab.RenderCSV(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println()
		} else if err := tab.Render(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "%s done in %v\n", id, time.Since(t0).Round(time.Millisecond))
	}
	st := eng.Stats()
	fmt.Fprintf(os.Stderr, "engine: %d jobs executed, %d deduped, cache %d hits / %d misses\n",
		st.Executed, st.Deduped, st.Cache.Hits, st.Cache.Misses)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spmt-experiments:", err)
	os.Exit(1)
}
