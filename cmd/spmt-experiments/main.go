// Command spmt-experiments regenerates the paper's evaluation: every
// figure of HPCA'02 §4 as an ASCII table (optionally CSV), over the
// synthetic SpecInt95-like suite. The per-benchmark pipelines are built
// concurrently on one work-stealing scheduler (-parallel is the core
// budget shared by jobs, reach fan-out, and GEMM tiles); the output is
// identical to a serial run.
//
// Usage:
//
//	spmt-experiments [-figure all|fig3|fig9b|...] [-size test|small|full]
//	                 [-bench go,gcc,...] [-parallel N] [-csv]
//	                 [-store-dir DIR] [-store-bytes 4GB]
//
// With -store-dir, pipeline artifacts persist to the same on-disk
// store format spmt-server uses, so repeated local figure runs (and a
// server pointed at the same directory) warm from each other's work
// instead of re-emulating every benchmark.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/engine/codec"
	"repro/internal/expt"
	"repro/internal/workload"
)

func main() {
	figure := flag.String("figure", "all", "figure to regenerate (all, fig2, fig3, fig4, fig5a, fig5b, fig6, fig7a, fig7b, fig8, fig9a, fig9b, fig10a, fig10b, fig11, fig12)")
	sizeFlag := flag.String("size", "full", "workload size class: test, small, full")
	benchFlag := flag.String("bench", "", "comma-separated benchmark subset (default: all eight)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "scheduler core budget shared by every parallelism level (1 = serial)")
	workersFlag := flag.Int("workers", 0, "deprecated alias for -parallel")
	csv := flag.Bool("csv", false, "emit CSV instead of ASCII tables")
	storeDir := flag.String("store-dir", "", "disk-tier directory shared with spmt-server (empty = memory-only)")
	storeBytes := flag.String("store-bytes", "", "disk-tier byte budget, e.g. 4GB (empty = unbounded)")
	flag.Parse()

	size, err := workload.ParseSize(*sizeFlag)
	if err != nil {
		fatal(err)
	}
	if *workersFlag != 0 {
		fmt.Fprintln(os.Stderr, "spmt-experiments: -workers is deprecated; use -parallel (one scheduler budget for every parallelism level)")
		parallelSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "parallel" {
				parallelSet = true
			}
		})
		if !parallelSet {
			*parallel = *workersFlag
		}
	}
	if *parallel < 1 {
		fatal(fmt.Errorf("-parallel must be >= 1, got %d", *parallel))
	}
	var names []string
	if *benchFlag != "" {
		names = strings.Split(*benchFlag, ",")
	}

	opts := engine.Options{Workers: *parallel}
	if *storeDir != "" {
		var diskBudget int64
		if *storeBytes != "" {
			var err error
			if diskBudget, err = engine.ParseBytes(*storeBytes); err != nil {
				fatal(fmt.Errorf("-store-bytes: %w", err))
			}
		}
		disk, err := engine.OpenDiskTier(*storeDir, diskBudget, codec.New())
		if err != nil {
			fatal(fmt.Errorf("-store-dir: %w", err))
		}
		opts.Disk = disk
	} else if *storeBytes != "" {
		fatal(fmt.Errorf("-store-bytes needs -store-dir"))
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "building pipeline (size=%s, workers=%d)...\n", size, *parallel)
	eng := engine.New(opts)
	if *storeDir != "" {
		n := eng.WarmFromDisk()
		fmt.Fprintf(os.Stderr, "warmed %d artifacts from %s\n", n, *storeDir)
	}
	suite, err := expt.NewSuiteEngine(eng, size, names)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "pipeline ready in %v\n", time.Since(start).Round(time.Millisecond))

	ids := expt.FigureIDs()
	if *figure != "all" {
		ids = strings.Split(*figure, ",")
	}
	for _, id := range ids {
		t0 := time.Now()
		tab, err := suite.Run(strings.TrimSpace(id))
		if err != nil {
			fatal(err)
		}
		if *csv {
			if err := tab.RenderCSV(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println()
		} else if err := tab.Render(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "%s done in %v\n", id, time.Since(t0).Round(time.Millisecond))
	}
	// Drain the async write-through queue so every artifact this run
	// computed is durable for the next run's warm-up.
	eng.Close()
	st := eng.Stats()
	fmt.Fprintf(os.Stderr, "engine: %d jobs executed, %d deduped, cache %d hits / %d misses\n",
		st.Executed, st.Deduped, st.Cache.Hits, st.Cache.Misses)
	if st.Disk != nil {
		fmt.Fprintf(os.Stderr, "store: %d disk hits, %d writes (%d async), %d artifacts / %d bytes resident\n",
			st.Disk.Hits, st.Disk.Writes, st.Disk.AsyncWrites, st.Disk.Entries, st.Disk.BytesResident)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spmt-experiments:", err)
	os.Exit(1)
}
