// Command spmt-sim runs one benchmark through the full pipeline and
// simulates it on the Clustered Speculative Multithreaded Processor
// under a chosen spawning policy and configuration, printing the
// detailed statistics.
//
// Usage:
//
//	spmt-sim -bench ijpeg [-size small] [-policy profile|heuristics|none]
//	         [-tus 16] [-predictor perfect|stride|context|last-value]
//	         [-overhead 8] [-removal 50] [-occurrences 8] [-reassign]
//	         [-minsize 32] [-criterion distance|independent|predictable]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	bench := flag.String("bench", "ijpeg", "benchmark name (go m88ksim gcc compress li ijpeg perl vortex)")
	sizeFlag := flag.String("size", "small", "workload size: test, small, full")
	policy := flag.String("policy", "profile", "spawning policy: profile, heuristics, none")
	criterion := flag.String("criterion", "distance", "CQIP ordering criterion: distance, independent, predictable")
	tus := flag.Int("tus", 16, "thread units")
	predictor := flag.String("predictor", "perfect", "live-in predictor: perfect, stride, context, last-value")
	overhead := flag.Int64("overhead", 0, "thread initialisation overhead in cycles")
	removal := flag.Int64("removal", 0, "alone-cycle pair-removal threshold (0 = off)")
	occurrences := flag.Int("occurrences", 1, "alone occurrences before removal")
	reassign := flag.Bool("reassign", false, "enable CQIP reassign policy")
	minSize := flag.Int("minsize", 0, "minimum thread size enforcement (0 = off)")
	window := flag.Float64("window", 4, "misspeculation window factor for profile pairs")
	flag.Parse()

	size, err := workload.ParseSize(*sizeFlag)
	check(err)
	prog, err := spmt.Generate(*bench, size)
	check(err)
	fmt.Printf("benchmark %s (%s): %d static instructions\n", *bench, size, prog.Len())

	art, err := spmt.Analyze(prog, spmt.AnalyzeConfig{})
	check(err)
	fmt.Printf("trace: %d dynamic instructions, pruned CFG: %d nodes (%.1f%% coverage)\n",
		art.Trace.Len(), len(art.Graph.Nodes), 100*art.Graph.Coverage)

	var pairs *spmt.PairTable
	switch *policy {
	case "profile":
		crit, err := parseCriterion(*criterion)
		check(err)
		pairs, err = spmt.SelectPairs(art, spmt.SelectConfig{Criterion: crit})
		check(err)
		fmt.Printf("profile pairs: %d selected of %d candidates\n", pairs.Len(), pairs.TotalCandidates)
	case "heuristics":
		pairs = spmt.HeuristicPairs(art, spmt.CombinedHeuristics)
		fmt.Printf("heuristic pairs: %d\n", pairs.Len())
	case "none":
	default:
		check(fmt.Errorf("unknown policy %q", *policy))
	}

	pk, err := parsePredictor(*predictor)
	check(err)

	base, err := spmt.Simulate(art.Trace, spmt.SimConfig{TUs: 1})
	check(err)

	cfg := spmt.SimConfig{
		TUs: *tus, Pairs: pairs, Predictor: pk,
		SpawnOverhead: *overhead, RemovalCycles: *removal,
		RemovalOccurrences: *occurrences, Reassign: *reassign,
		MinThreadSize: *minSize, SpawnWindowFactor: *window,
	}
	res, err := spmt.Simulate(art.Trace, cfg)
	check(err)

	fmt.Printf("\nbaseline (1 TU):      %10d cycles  IPC %.2f\n", base.Cycles, base.IPC)
	fmt.Printf("SpMT (%2d TUs):        %10d cycles  IPC %.2f\n", *tus, res.Cycles, res.IPC)
	fmt.Printf("speed-up:             %10.2f\n", spmt.Speedup(base, res))
	fmt.Printf("active threads (avg): %10.2f   allocated: %.2f\n", res.AvgActiveThreads, res.AvgAllocatedThreads)
	fmt.Printf("threads committed:    %10d   avg size: %.1f instructions\n", res.ThreadsCommitted, res.AvgThreadSize)
	fmt.Printf("spawns:               %10d   blocked: noTU=%d occupied=%d region=%d\n",
		res.Spawns, res.SpawnsBlockedNoTU, res.SpawnsBlockedOccupied, res.SpawnsBlockedRegion)
	fmt.Printf("squashes:             control=%d memory=%d killed=%d mispredict-stalls=%d\n",
		res.ControlSquashes, res.MemViolationSquashes, res.ThreadsKilled, res.MispredictStalls)
	if res.VPLookups > 0 {
		fmt.Printf("value prediction:     %d lookups, %.1f%% accuracy\n", res.VPLookups, 100*res.VPAccuracy())
	}
	fmt.Printf("pairs removed:        alone=%d min-size=%d\n", res.PairsRemovedAlone, res.PairsRemovedMinSize)
	fmt.Printf("branches:             %d (%.2f%% mispredicted)\n", res.Branches,
		100*float64(res.BranchMispredicts)/float64(max64(res.Branches, 1)))
	fmt.Printf("cache:                %d hits / %d misses\n", res.CacheHits, res.CacheMisses)
	fmt.Printf("SVC:                  %d forwards, %d violations\n", res.SVCForwards, res.SVCViolations)
}

func parseCriterion(s string) (core.Criterion, error) {
	switch s {
	case "distance":
		return core.MaxDistance, nil
	case "independent":
		return core.MaxIndependent, nil
	case "predictable":
		return core.MaxPredictable, nil
	}
	return 0, fmt.Errorf("unknown criterion %q", s)
}

func parsePredictor(s string) (cluster.PredictorKind, error) {
	switch s {
	case "perfect":
		return cluster.Perfect, nil
	case "stride":
		return cluster.Stride, nil
	case "context":
		return cluster.Context, nil
	case "last-value":
		return cluster.LastValue, nil
	}
	return 0, fmt.Errorf("unknown predictor %q", s)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "spmt-sim:", err)
		os.Exit(1)
	}
}
