// Quickstart: the smallest end-to-end use of the library.
//
// It builds a tiny hand-written program with one independent-iteration
// loop, runs the paper's profile-based spawning-pair selection on it,
// and compares single-threaded execution against the 16-thread-unit
// Clustered SpMT processor — the core experiment of the paper in
// miniature (with an annotated view of Figure 1's SP/CQIP concept).
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/isa"
)

func main() {
	// A 96-iteration loop: dst[i] = f(src[i]), iterations independent.
	prog := buildProgram()
	fmt.Printf("program: %d static instructions\n", prog.Len())

	// Profile: emulate to completion, build the pruned dynamic CFG,
	// and compute reaching probabilities and expected distances.
	art, err := spmt.Analyze(prog, spmt.AnalyzeConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d dynamic instructions, %d hot blocks (%.1f%% coverage)\n",
		art.Trace.Len(), len(art.Graph.Nodes), 100*art.Graph.Coverage)

	// Select spawning pairs (min reaching probability 0.95, min
	// distance 32 — the paper's thresholds).
	pairs, err := spmt.SelectPairs(art, spmt.SelectConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nspawning pairs (%d candidates, %d selected):\n", pairs.TotalCandidates, pairs.Len())
	for _, p := range pairs.Primary {
		fmt.Printf("  SP@%-3d -> CQIP@%-3d  kind=%-8v P(reach)=%.3f  E[distance]=%.1f  live-ins=%v\n",
			p.SP, p.CQIP, p.Kind, p.Prob, p.Dist, p.LiveIns)
	}
	fmt.Println(`
  (Figure 1: when a thread unit fetches the SP, a free unit starts
   executing at the CQIP — the next dynamic occurrence of that PC —
   while the spawner continues up to the CQIP, which becomes the join.)`)

	// Simulate: single-threaded baseline vs the 16-TU processor.
	base, err := spmt.Simulate(art.Trace, spmt.SimConfig{TUs: 1})
	if err != nil {
		log.Fatal(err)
	}
	smt, err := spmt.Simulate(art.Trace, spmt.SimConfig{TUs: 16, Pairs: pairs})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: %6d cycles (IPC %.2f)\n", base.Cycles, base.IPC)
	fmt.Printf("SpMT:     %6d cycles (IPC %.2f), %d threads, %.1f active on average\n",
		smt.Cycles, smt.IPC, smt.ThreadsCommitted, smt.AvgActiveThreads)
	fmt.Printf("speed-up: %.2fx\n", spmt.Speedup(base, smt))
}

// buildProgram assembles the loop with the library's program builder.
func buildProgram() *spmt.Program {
	const (
		src   = 0x10000
		dst   = 0x20000
		trips = 96
	)
	b := isa.NewBuilder("quickstart")
	b.Func("main")
	// init: src[i] = 7 + 3i
	b.Li(8, src)
	b.Li(9, src+8*trips)
	b.Li(10, 7)
	b.Label("init")
	b.Store(10, 8, 0)
	b.Addi(10, 10, 3)
	b.Addi(8, 8, 8)
	b.Branch(isa.OpBltu, 8, 9, "init")
	// map loop: dst[i] = f(src[i]) with a ~40-instruction body
	b.Li(8, src)
	b.Li(9, src+8*trips)
	b.Li(11, dst)
	b.Label("loop")
	b.Load(12, 8, 0)
	for i := 0; i < 18; i++ {
		b.Op3(isa.OpAdd, 13, 12, 12)
		b.Op3(isa.OpXor, 12, 13, 12)
	}
	b.Store(12, 11, 0)
	b.Addi(8, 8, 8)
	b.Addi(11, 11, 8)
	b.Branch(isa.OpBltu, 8, 9, "loop")
	b.Halt()
	return b.MustBuild()
}
