// Custompolicy: extending the library with a user-defined spawning
// policy. The simulator consumes any PairTable, so a policy is just
// code that builds one.
//
// The custom policy here is "call-depth-2 continuations": spawn only at
// call sites whose callee itself makes a call (helper→worker chains),
// on the theory that deep call trees mark coarse work. It is built
// directly from the program structure and the trace-measured callee
// lengths, then raced against the paper's profile-based scheme.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/isa"
)

func main() {
	prog := spmt.MustGenerate("vortex", spmt.SizeSmall)
	art, err := spmt.Analyze(prog, spmt.AnalyzeConfig{})
	if err != nil {
		log.Fatal(err)
	}

	custom := deepCallPolicy(art)
	fmt.Printf("custom policy selected %d pairs\n", custom.Len())

	profile, err := spmt.SelectPairs(art, spmt.SelectConfig{})
	if err != nil {
		log.Fatal(err)
	}

	base, err := spmt.Simulate(art.Trace, spmt.SimConfig{TUs: 1})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range []struct {
		name  string
		pairs *spmt.PairTable
	}{
		{"custom deep-call", custom},
		{"profile-based", profile},
		{"combined heuristics", spmt.HeuristicPairs(art, spmt.CombinedHeuristics)},
	} {
		res, err := spmt.Simulate(art.Trace, spmt.SimConfig{TUs: 16, Pairs: p.pairs, SpawnWindowFactor: 4})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %d pairs  speed-up %.2fx  (%.1f active threads)\n",
			p.name, p.pairs.Len(), spmt.Speedup(base, res), res.AvgActiveThreads)
	}
}

// deepCallPolicy builds a PairTable of continuations of calls whose
// callee contains another call.
func deepCallPolicy(art *spmt.Artifacts) *spmt.PairTable {
	prog := art.Program

	// Find functions that contain calls.
	callsInside := map[string]bool{}
	for pc := range prog.Code {
		if prog.Code[pc].Op == isa.OpCall {
			if f := prog.FuncAt(uint32(pc)); f != nil {
				callsInside[f.Name] = true
			}
		}
	}

	// Pair every call site whose target function itself calls.
	var reqs []dep.Request
	var sps []uint32
	for pc := range prog.Code {
		ins := &prog.Code[pc]
		if ins.Op != isa.OpCall {
			continue
		}
		callee := prog.FuncAt(ins.Target)
		if callee == nil || !callsInside[callee.Name] {
			continue
		}
		if art.Profile.BlockCount[art.Profile.BlockOf(uint32(pc))] == 0 {
			continue
		}
		sps = append(sps, uint32(pc))
		reqs = append(reqs, dep.Request{Key: dep.Key{SP: uint32(pc), CQIP: uint32(pc) + 1}})
	}
	stats := dep.Analyze(art.Trace, reqs, dep.Config{})

	table := &core.Table{Alternates: map[uint32][]core.Pair{}}
	for _, sp := range sps {
		st := stats[dep.Key{SP: sp, CQIP: sp + 1}]
		if st == nil || st.Occurrences == 0 {
			continue
		}
		table.Primary = append(table.Primary, core.Pair{
			SP: sp, CQIP: sp + 1, Kind: core.KindSubCont,
			Prob: 1, Dist: st.AvgDist, Score: st.AvgDist,
			LiveIns:     st.LiveIns,
			Predictable: st.PredictableLiveIns(dep.PredictableThreshold),
			AvgIndep:    st.AvgIndep, AvgPred: st.AvgPred,
		})
	}
	table.TotalCandidates = len(table.Primary)
	sort.Slice(table.Primary, func(a, b int) bool { return table.Primary[a].SP < table.Primary[b].SP })
	return table
}
