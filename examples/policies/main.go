// Policies: the §4.2 dynamic mechanisms in action — spawning-pair
// removal (with occurrence delay and the footnoted few-threads and
// revisit variants), CQIP reassignment, and minimum-thread-size
// enforcement — on an irregular, call-heavy workload.
//
// The output mirrors the structure of Figures 5–7: each row is one
// policy configuration with its speed-up and the policy's visible
// effects (pairs removed/re-enabled, thread sizes).
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro"
)

func main() {
	prog := spmt.MustGenerate("perl", spmt.SizeSmall)
	art, err := spmt.Analyze(prog, spmt.AnalyzeConfig{})
	if err != nil {
		log.Fatal(err)
	}
	pairs, err := spmt.SelectPairs(art, spmt.SelectConfig{})
	if err != nil {
		log.Fatal(err)
	}
	base, err := spmt.Simulate(art.Trace, spmt.SimConfig{TUs: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("perl-like workload: %d pairs selected, baseline %d cycles\n\n", pairs.Len(), base.Cycles)

	configs := []struct {
		name string
		cfg  spmt.SimConfig
	}{
		{"no policy", spmt.SimConfig{}},
		{"removal 50", spmt.SimConfig{RemovalCycles: 50}},
		{"removal 200", spmt.SimConfig{RemovalCycles: 200}},
		{"removal 50 x8 occurrences", spmt.SimConfig{RemovalCycles: 50, RemovalOccurrences: 8}},
		{"removal 50, few<=3", spmt.SimConfig{RemovalCycles: 50, RemovalFewThreshold: 3}},
		{"removal 50, revisit 5000", spmt.SimConfig{RemovalCycles: 50, RemovalRevisit: 5000}},
		{"reassign", spmt.SimConfig{RemovalCycles: 50, Reassign: true}},
		{"min thread size 32", spmt.SimConfig{RemovalCycles: 50, MinThreadSize: 32}},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "policy\tspeed-up\tremoved(alone)\tremoved(size)\trevisited\tavg thread size\n")
	for _, c := range configs {
		cfg := c.cfg
		cfg.TUs = 16
		cfg.Pairs = pairs
		cfg.SpawnWindowFactor = 4
		res, err := spmt.Simulate(art.Trace, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\t%.2fx\t%d\t%d\t%d\t%.1f\n",
			c.name, spmt.Speedup(base, res),
			res.PairsRemovedAlone, res.PairsRemovedMinSize, res.PairsRevisited, res.AvgThreadSize)
	}
	w.Flush()
	fmt.Println("\n(16 thread units, perfect value prediction)")
}
