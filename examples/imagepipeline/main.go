// Imagepipeline: the paper's motivating scenario — a regular,
// loop-dominated workload (the ijpeg personality) — evaluated under all
// four spawning policies across thread-unit counts.
//
// This reproduces the qualitative story of Figures 3, 8, and 12 on one
// benchmark: the profile-based scheme matches or beats every individual
// construct heuristic, and speed-up grows with thread units.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro"
)

func main() {
	prog := spmt.MustGenerate("ijpeg", spmt.SizeSmall)
	art, err := spmt.Analyze(prog, spmt.AnalyzeConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ijpeg-like workload: %d dynamic instructions\n\n", art.Trace.Len())

	profile, err := spmt.SelectPairs(art, spmt.SelectConfig{})
	if err != nil {
		log.Fatal(err)
	}
	policies := []struct {
		name  string
		pairs *spmt.PairTable
	}{
		{"profile-based", profile},
		{"loop-iteration", spmt.HeuristicPairs(art, spmt.LoopIteration)},
		{"loop-continuation", spmt.HeuristicPairs(art, spmt.LoopContinuation)},
		{"subroutine-cont", spmt.HeuristicPairs(art, spmt.SubroutineContinuation)},
		{"combined-heuristics", spmt.HeuristicPairs(art, spmt.CombinedHeuristics)},
	}

	base, err := spmt.Simulate(art.Trace, spmt.SimConfig{TUs: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single-threaded baseline: %d cycles (IPC %.2f)\n\n", base.Cycles, base.IPC)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "policy\tpairs\t4 TUs\t8 TUs\t16 TUs\tactive@16\n")
	for _, pol := range policies {
		fmt.Fprintf(w, "%s\t%d", pol.name, pol.pairs.Len())
		var act float64
		for _, tus := range []int{4, 8, 16} {
			res, err := spmt.Simulate(art.Trace, spmt.SimConfig{
				TUs: tus, Pairs: pol.pairs, SpawnWindowFactor: 4,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(w, "\t%.2fx", spmt.Speedup(base, res))
			act = res.AvgActiveThreads
		}
		fmt.Fprintf(w, "\t%.1f\n", act)
	}
	w.Flush()

	fmt.Println("\n(speed-ups over single-threaded execution; perfect value prediction)")
}
