// Valueprediction: the §4.3.1 study in miniature — how live-in value
// predictors behave, first on controlled value streams, then inside the
// simulated processor.
//
// Part 1 drives each predictor with synthetic live-in sequences
// (strided, constant, periodic, random) and reports hit rates — the
// microbenchmark view of why strides dominate thread live-ins.
// Part 2 runs a benchmark under perfect / stride / context / last-value
// prediction and reports accuracy and speed-up (Figures 9a/9b).
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro"
	"repro/internal/isa"
	"repro/internal/vpred"
)

func main() {
	part1()
	part2()
}

func part1() {
	fmt.Println("Part 1: predictor hit rates on controlled live-in streams")
	streams := []struct {
		name string
		gen  func(i int) uint64
	}{
		{"strided (+8)", func(i int) uint64 { return 0x1000 + uint64(i)*8 }},
		{"constant", func(i int) uint64 { return 42 }},
		{"period-3", func(i int) uint64 { return [3]uint64{7, 100, 13}[i%3] }},
		{"hashed", func(i int) uint64 {
			x := uint64(i)*6364136223846793005 + 1442695040888963407
			return x ^ x>>29
		}},
	}
	preds := func() []vpred.Predictor {
		return []vpred.Predictor{
			vpred.NewStride(16 << 10), vpred.NewFCM(16 << 10), vpred.NewLastValue(16 << 10),
		}
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "stream\tstride\tcontext\tlast-value\n")
	for _, st := range streams {
		fmt.Fprintf(w, "%s", st.name)
		for _, p := range preds() {
			hits, trials := 0, 0
			for i := 0; i < 512; i++ {
				v := st.gen(i)
				if i >= 32 {
					trials++
					if pred, known := p.Predict(10, 20, isa.Reg(5)); known && pred == v {
						hits++
					}
				}
				p.Update(10, 20, isa.Reg(5), v)
			}
			fmt.Fprintf(w, "\t%.1f%%", 100*float64(hits)/float64(trials))
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	fmt.Println()
}

func part2() {
	fmt.Println("Part 2: in-simulator effect (m88ksim, 16 TUs, profile pairs)")
	prog := spmt.MustGenerate("m88ksim", spmt.SizeSmall)
	art, err := spmt.Analyze(prog, spmt.AnalyzeConfig{})
	if err != nil {
		log.Fatal(err)
	}
	pairs, err := spmt.SelectPairs(art, spmt.SelectConfig{})
	if err != nil {
		log.Fatal(err)
	}
	base, err := spmt.Simulate(art.Trace, spmt.SimConfig{TUs: 1})
	if err != nil {
		log.Fatal(err)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "predictor\taccuracy\tspeed-up\tmispredict-stalls\n")
	for _, pk := range []spmt.SimConfig{
		{Predictor: spmt.Perfect},
		{Predictor: spmt.Stride},
		{Predictor: spmt.Context},
		{Predictor: spmt.LastValue},
	} {
		cfg := pk
		cfg.TUs = 16
		cfg.Pairs = pairs
		cfg.SpawnWindowFactor = 4
		res, err := spmt.Simulate(art.Trace, cfg)
		if err != nil {
			log.Fatal(err)
		}
		acc := "-"
		if res.VPLookups > 0 {
			acc = fmt.Sprintf("%.1f%%", 100*res.VPAccuracy())
		}
		fmt.Fprintf(w, "%v\t%s\t%.2fx\t%d\n", cfg.Predictor, acc, spmt.Speedup(base, res), res.MispredictStalls)
	}
	w.Flush()
}
