// Package spmt is the public facade of the repository: a library
// reproduction of "Thread-Spawning Schemes for Speculative
// Multithreading" (Marcuello & González, HPCA 2002).
//
// The paper proposes selecting speculative-thread spawning pairs — a
// spawning point (SP) and a control quasi-independent point (CQIP) —
// by profile analysis: build the dynamic control-flow graph, prune it
// to the hot 90%, compute for every block pair the probability that the
// second block executes before the first recurs (and the expected
// instruction distance), and keep pairs above probability 0.95 and
// distance 32. Competing CQIPs for one SP are ordered by expected
// thread size, independence, or value predictability. The scheme is
// evaluated on a Clustered Speculative Multithreaded Processor against
// the traditional loop-iteration / loop-continuation / subroutine-
// continuation heuristics.
//
// A typical end-to-end use:
//
//	prog := spmt.MustGenerate("ijpeg", spmt.SizeSmall)
//	art, _ := spmt.Analyze(prog, spmt.AnalyzeConfig{})
//	pairs, _ := spmt.SelectPairs(art, spmt.SelectConfig{})
//	base, _ := spmt.Simulate(art.Trace, spmt.SimConfig{TUs: 1})
//	smt, _ := spmt.Simulate(art.Trace, spmt.SimConfig{TUs: 16, Pairs: pairs})
//	fmt.Printf("speed-up: %.2f\n", spmt.Speedup(base, smt))
//
// The heavy lifting lives in the internal packages (isa, emu, cfg,
// reach, dep, core, heuristic, bpred, vpred, cache, svc, cluster,
// workload, expt); this package re-exports the types and entry points a
// downstream user needs.
package spmt

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/engine"
	"repro/internal/engine/codec"
	"repro/internal/heuristic"
	"repro/internal/isa"
	"repro/internal/reach"
	"repro/internal/shard"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Re-exported substrate types.
type (
	// Program is an executable program for the repository's RISC-like
	// ISA.
	Program = isa.Program
	// Trace is a dynamic instruction stream.
	Trace = trace.Trace
	// Profile is the basic-block/edge execution profile.
	Profile = emu.Profile
	// Graph is the (pruned) dynamic control-flow graph.
	Graph = cfg.Graph
	// ReachResult holds the pairwise reaching-probability and
	// expected-distance matrices.
	ReachResult = reach.Result
	// Pair is one spawning pair (SP, CQIP).
	Pair = core.Pair
	// PairTable is a spawn-pair table (one primary pair per SP plus
	// ordered alternates).
	PairTable = core.Table
	// SimConfig parameterises the Clustered SpMT processor simulation.
	SimConfig = cluster.Config
	// SimResult carries simulation statistics.
	SimResult = cluster.Result
	// SelectConfig parameterises profile-based pair selection.
	SelectConfig = core.Config
	// SizeClass scales generated benchmark work.
	SizeClass = workload.SizeClass
)

// Workload size classes.
const (
	SizeTest  = workload.SizeTest
	SizeSmall = workload.SizeSmall
	SizeFull  = workload.SizeFull
)

// CQIP ordering criteria (paper §3.1).
const (
	MaxDistance    = core.MaxDistance
	MaxIndependent = core.MaxIndependent
	MaxPredictable = core.MaxPredictable
)

// Value predictor kinds (paper §4.3.1).
const (
	Perfect   = cluster.Perfect
	Stride    = cluster.Stride
	Context   = cluster.Context
	LastValue = cluster.LastValue
)

// Heuristic schemes (paper §3, the comparison baselines).
const (
	LoopIteration          = heuristic.LoopIteration
	LoopContinuation       = heuristic.LoopContinuation
	SubroutineContinuation = heuristic.SubroutineContinuation
	CombinedHeuristics     = heuristic.Combined
)

// Benchmarks lists the synthetic SpecInt95-like suite.
var Benchmarks = workload.Benchmarks

// ParseSize parses a size-class name ("test", "small", "full").
func ParseSize(s string) (SizeClass, error) { return workload.ParseSize(s) }

// ParseBytes parses a human byte size ("512MB", "1.5gb", "8192") for
// EngineOptions.CacheBytes.
func ParseBytes(s string) (int64, error) { return engine.ParseBytes(s) }

// Concurrent job-execution engine (re-exported from internal/engine).
// An Engine runs keyed, dependency-ordered jobs on a bounded worker
// pool, deduplicates identical in-flight work, and memoizes artifacts
// in a content-keyed LRU cache. One Engine is meant to be shared by
// everything in the process — experiment suites, server handlers,
// ad-hoc analyses — so they hit each other's warm artifacts.
type (
	// Engine is the concurrent job executor.
	Engine = engine.Engine
	// EngineOptions configures the scheduler core budget (Workers —
	// one work-stealing pool shared by job execution, reach fan-out,
	// and GEMM tiles), cache entry capacity, and the cache's
	// resident-byte budget (CacheBytes).
	EngineOptions = engine.Options
	// EngineJob is one keyed unit of work with dependencies.
	EngineJob = engine.Job
	// EngineStats snapshots cache, dedup, byte-residency, and
	// per-job-kind latency counters (per store tier when a disk tier
	// is configured).
	EngineStats = engine.Stats
	// DiskTier is the persistent tier of the artifact store: one
	// content-keyed file per artifact, atomic writes, byte-budgeted
	// LRU eviction, corruption-tolerant reads.
	DiskTier = engine.DiskTier
	// DiskStats snapshots disk-tier hit/write/eviction counters.
	DiskStats = engine.DiskStats
)

// NewEngine builds a concurrent job engine. The zero Options select a
// GOMAXPROCS-sized worker pool and the default artifact-cache capacity.
func NewEngine(opts EngineOptions) *Engine { return engine.New(opts) }

// OpenDiskTier opens (creating if needed) a persistent artifact store
// under dir, bounded by maxBytes (0 = unbounded), wired to the codec
// covering every pipeline artifact type. Assign the result to
// EngineOptions.Disk, then call Engine.WarmFromDisk to promote a
// previous run's artifacts into memory at boot.
func OpenDiskTier(dir string, maxBytes int64) (*DiskTier, error) {
	return engine.OpenDiskTier(dir, maxBytes, codec.New())
}

// Consistent-hash sharding (re-exported from internal/shard). A
// cluster of spmt-server processes (or embedded engines) maps every
// artifact key to one owning node; see the README's sharded-deployment
// section for topology and failure semantics.
type (
	// ShardRing is an immutable consistent-hash ring mapping artifact
	// keys to owning node names.
	ShardRing = shard.Ring
	// ShardCluster is one node's view of a shard cluster: the member
	// ring, this node's URL, and the peer HTTP client.
	ShardCluster = shard.Cluster
	// ShardOptions configures a ShardCluster (virtual-node count,
	// fetch timeout).
	ShardOptions = shard.Options
	// ShardStats snapshots one node's proxy/fan-out/artifact-exchange
	// counters.
	ShardStats = shard.Stats
)

// NewShardRing builds a consistent-hash ring over the given node names
// with vnodes virtual nodes each (<= 0 selects the default, 128).
func NewShardRing(nodes []string, vnodes int) *ShardRing { return shard.NewRing(nodes, vnodes) }

// NewShardCluster builds one node's cluster view. self must appear in
// members, and every member must be configured with the same list.
func NewShardCluster(self string, members []string, opts ShardOptions) (*ShardCluster, error) {
	return shard.New(self, members, opts)
}

// NewShardFetcher returns the EngineOptions.Remote hook that pulls
// store misses from their owning shard's artifact endpoint.
func NewShardFetcher(cl *ShardCluster) engine.RemoteFetcher {
	return shard.NewFetcher(cl, codec.New())
}

// Generate builds a named benchmark program.
func Generate(name string, size SizeClass) (*Program, error) {
	return workload.Generate(name, size)
}

// MustGenerate is Generate that panics on error.
func MustGenerate(name string, size SizeClass) *Program {
	return workload.MustGenerate(name, size)
}

// Artifacts bundles the profiling pipeline's outputs for one program.
type Artifacts struct {
	Program *Program
	Trace   *Trace
	Profile *Profile
	Graph   *Graph
	Reach   *ReachResult
}

// AnalyzeConfig controls the profiling pipeline.
type AnalyzeConfig struct {
	// Coverage is the pruning coverage target (default 0.90, the
	// paper's value).
	Coverage float64
	// MaxNodes caps the pruned CFG size (default 256).
	MaxNodes int
	// MaxInstrs bounds emulation (default emu.DefaultMaxInstrs).
	MaxInstrs int
	// ReachWorkers bounds the reach engine's per-source fan-out
	// (1 forces serial). Output is byte-identical for every worker
	// count.
	//
	// Deprecated: leave zero. Reach now runs on the process-wide
	// work-stealing scheduler (one worker per core), sharing its
	// budget with every other parallelism level; a non-zero value
	// spins up a throwaway pool alongside it and logs a warning.
	ReachWorkers int
}

// Analyze runs the program and produces every profiling artefact the
// spawning analyses need: trace, profile, pruned CFG, and the
// reaching-probability/distance matrices.
func Analyze(p *Program, cfgA AnalyzeConfig) (*Artifacts, error) {
	if cfgA.Coverage == 0 {
		cfgA.Coverage = 0.90
	}
	if cfgA.MaxNodes == 0 {
		cfgA.MaxNodes = 256
	}
	res, err := emu.Run(p, emu.Config{CollectTrace: true, MaxInstrs: cfgA.MaxInstrs})
	if err != nil {
		return nil, fmt.Errorf("spmt: emulate: %w", err)
	}
	g, err := cfg.Build(res.Profile).Prune(cfgA.Coverage, cfgA.MaxNodes)
	if err != nil {
		return nil, fmt.Errorf("spmt: prune: %w", err)
	}
	r, err := reach.ComputeOpts(g, reach.Options{Workers: cfgA.ReachWorkers})
	if err != nil {
		return nil, fmt.Errorf("spmt: reach: %w", err)
	}
	res.Trace.BuildIndex()
	return &Artifacts{Program: p, Trace: res.Trace, Profile: res.Profile, Graph: g, Reach: r}, nil
}

// SelectPairs runs the paper's profile-based spawning-pair selection
// over the artefacts.
func SelectPairs(a *Artifacts, cfgS SelectConfig) (*PairTable, error) {
	return core.Select(a.Profile, a.Graph, a.Reach, a.Trace, cfgS)
}

// HeuristicPairs derives the traditional construct-based pairs
// (loop-iteration, loop-continuation, subroutine-continuation or their
// combination).
func HeuristicPairs(a *Artifacts, scheme heuristic.Scheme) *PairTable {
	return heuristic.Pairs(a.Program, a.Profile, a.Trace, scheme, heuristic.Config{})
}

// Simulate runs the Clustered SpMT processor model over a trace.
func Simulate(tr *Trace, cfgSim SimConfig) (*SimResult, error) {
	return cluster.Simulate(tr, cfgSim)
}

// Speedup returns base.Cycles / other.Cycles.
func Speedup(base, other *SimResult) float64 {
	if other.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(other.Cycles)
}
