package spmt_test

import (
	"context"
	"testing"

	"repro"
)

// TestPublicAPIEndToEnd exercises the documented quickstart flow.
func TestPublicAPIEndToEnd(t *testing.T) {
	prog, err := spmt.Generate("compress", spmt.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	art, err := spmt.Analyze(prog, spmt.AnalyzeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if art.Trace.Len() == 0 || len(art.Graph.Nodes) == 0 {
		t.Fatal("empty artefacts")
	}
	pairs, err := spmt.SelectPairs(art, spmt.SelectConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if pairs.Len() == 0 {
		t.Fatal("no pairs selected")
	}
	base, err := spmt.Simulate(art.Trace, spmt.SimConfig{TUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	smt, err := spmt.Simulate(art.Trace, spmt.SimConfig{TUs: 16, Pairs: pairs, SpawnWindowFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sp := spmt.Speedup(base, smt); sp <= 1 {
		t.Errorf("speed-up %.2f not above 1", sp)
	}
	if spmt.Speedup(base, &spmt.SimResult{}) != 0 {
		t.Error("zero-cycle guard failed")
	}
}

func TestPublicAPIHeuristics(t *testing.T) {
	prog := spmt.MustGenerate("li", spmt.SizeTest)
	art, err := spmt.Analyze(prog, spmt.AnalyzeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tab := spmt.HeuristicPairs(art, spmt.CombinedHeuristics)
	if tab.Len() == 0 {
		t.Fatal("no heuristic pairs")
	}
	li := spmt.HeuristicPairs(art, spmt.LoopIteration)
	if li.Len() > tab.Len() {
		t.Error("individual scheme has more pairs than the combination")
	}
}

func TestPublicAPIBadInputs(t *testing.T) {
	if _, err := spmt.Generate("nope", spmt.SizeTest); err == nil {
		t.Error("expected error for unknown benchmark")
	}
	prog := spmt.MustGenerate("ijpeg", spmt.SizeTest)
	if _, err := spmt.Analyze(prog, spmt.AnalyzeConfig{MaxInstrs: 10}); err == nil {
		t.Error("expected budget error")
	}
}

func TestBenchmarksListStable(t *testing.T) {
	want := []string{"go", "m88ksim", "gcc", "compress", "li", "ijpeg", "perl", "vortex"}
	if len(spmt.Benchmarks) != len(want) {
		t.Fatalf("benchmarks = %v", spmt.Benchmarks)
	}
	for i := range want {
		if spmt.Benchmarks[i] != want[i] {
			t.Fatalf("benchmarks = %v", spmt.Benchmarks)
		}
	}
}

func TestEngineFacade(t *testing.T) {
	eng := spmt.NewEngine(spmt.EngineOptions{Workers: 2})
	if eng.Workers() != 2 {
		t.Fatalf("workers = %d, want 2", eng.Workers())
	}
	job := spmt.EngineJob{
		Key: "facade/answer",
		Run: func(ctx context.Context, deps []any) (any, error) { return 42, nil },
	}
	for i := 0; i < 2; i++ {
		v, err := eng.Exec(context.Background(), job)
		if err != nil || v.(int) != 42 {
			t.Fatalf("exec %d: v=%v err=%v", i, v, err)
		}
	}
	st := eng.Stats()
	if st.Executed != 1 || st.Cache.Hits != 1 {
		t.Errorf("stats = %+v, want 1 executed / 1 hit", st)
	}
}

func TestParseSizeFacade(t *testing.T) {
	for name, want := range map[string]spmt.SizeClass{
		"test": spmt.SizeTest, "small": spmt.SizeSmall, "full": spmt.SizeFull,
	} {
		got, err := spmt.ParseSize(name)
		if err != nil || got != want {
			t.Errorf("ParseSize(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := spmt.ParseSize("huge"); err == nil {
		t.Error("ParseSize accepted garbage")
	}
}
