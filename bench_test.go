// Benchmarks that regenerate every table and figure of the paper's
// evaluation (HPCA'02 §4), plus ablations of this reproduction's own
// design choices and microbenchmarks of the substrates.
//
// The figure benchmarks are heavyweight end-to-end runs; use
//
//	go test -bench=Fig -benchtime=1x
//
// to regenerate each figure once. Results are reported as custom
// metrics (hmean speed-up, accuracy, ...) in addition to wall time.
// cmd/spmt-experiments renders the same data as tables.
package spmt_test

import (
	"fmt"
	"strconv"
	"sync"
	"testing"

	"repro"
	"repro/internal/cache"
	"repro/internal/emu"
	"repro/internal/expt"
	"repro/internal/reach"
	"repro/internal/vpred"
	"repro/internal/workload"
)

// suite is shared across figure benchmarks; its caches make repeated
// iterations cheap.
var (
	suiteOnce sync.Once
	suiteVal  *expt.Suite
	suiteErr  error
)

func suite(b *testing.B) *expt.Suite {
	suiteOnce.Do(func() {
		suiteVal, suiteErr = expt.NewSuite(workload.SizeSmall, nil)
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suiteVal
}

// lastFloat extracts the last numeric column of a table's summary row
// (the figure's aggregate) as a reported metric.
func lastFloat(b *testing.B, cells []string) float64 {
	for i := len(cells) - 1; i >= 0; i-- {
		s := cells[i]
		if s == "" {
			continue
		}
		if s[len(s)-1] == '%' {
			s = s[:len(s)-1]
		}
		if v, err := strconv.ParseFloat(s, 64); err == nil {
			return v
		}
	}
	b.Logf("no numeric summary in %v", cells)
	return 0
}

func benchFigure(b *testing.B, id, metric string) {
	s := suite(b)
	b.ResetTimer()
	var v float64
	for i := 0; i < b.N; i++ {
		tab, err := s.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		v = lastFloat(b, tab.Rows[len(tab.Rows)-1])
	}
	b.ReportMetric(v, metric)
}

func BenchmarkFig2PairSelection(b *testing.B)  { benchFigure(b, "fig2", "selected-pairs") }
func BenchmarkFig3ProfileSpeedup(b *testing.B) { benchFigure(b, "fig3", "hmean-speedup") }
func BenchmarkFig4ActiveThreads(b *testing.B)  { benchFigure(b, "fig4", "amean-active") }
func BenchmarkFig5aRemoval(b *testing.B)       { benchFigure(b, "fig5a", "hmean-speedup-200") }
func BenchmarkFig5bOccurrences(b *testing.B)   { benchFigure(b, "fig5b", "hmean-speedup-16occ") }
func BenchmarkFig6Reassign(b *testing.B)       { benchFigure(b, "fig6", "hmean-speedup-reassign") }
func BenchmarkFig7aThreadSize(b *testing.B)    { benchFigure(b, "fig7a", "amean-thread-size") }
func BenchmarkFig7bMinSize(b *testing.B)       { benchFigure(b, "fig7b", "hmean-speedup-min32") }
func BenchmarkFig8VsHeuristics(b *testing.B)   { benchFigure(b, "fig8", "profile-vs-heur-ratio") }
func BenchmarkFig9aVPAccuracy(b *testing.B)    { benchFigure(b, "fig9a", "context-heur-accuracy-pct") }
func BenchmarkFig9bStrideSpeedup(b *testing.B) { benchFigure(b, "fig9b", "hmean-stride-heur") }
func BenchmarkFig10aCriteriaAccuracy(b *testing.B) {
	benchFigure(b, "fig10a", "context-pred-accuracy-pct")
}
func BenchmarkFig10bCriteriaSpeedup(b *testing.B) { benchFigure(b, "fig10b", "hmean-predictable") }
func BenchmarkFig11Overhead(b *testing.B)         { benchFigure(b, "fig11", "hmean-retained-heur") }
func BenchmarkFig12FourTU(b *testing.B)           { benchFigure(b, "fig12", "hmean-stride-ov-heur") }

// --- Ablations of this reproduction's design choices (DESIGN.md §5) ---

// BenchmarkAblationSpawnWindow quantifies the misspeculation-window
// model applied to profile-table pairs.
func BenchmarkAblationSpawnWindow(b *testing.B) {
	for _, factor := range []float64{0, 2, 4, 8} {
		b.Run(fmt.Sprintf("factor-%g", factor), func(b *testing.B) {
			art, pairs, base := pipelineFor(b, "gcc")
			b.ResetTimer()
			var sp float64
			for i := 0; i < b.N; i++ {
				res, err := spmt.Simulate(art.Trace, spmt.SimConfig{
					TUs: 16, Pairs: pairs, SpawnWindowFactor: factor,
				})
				if err != nil {
					b.Fatal(err)
				}
				sp = float64(base) / float64(res.Cycles)
			}
			b.ReportMetric(sp, "speedup")
		})
	}
}

// BenchmarkAblationPredictorBudget sweeps the stride predictor's
// hardware budget around the paper's 16KB.
func BenchmarkAblationPredictorBudget(b *testing.B) {
	for _, kb := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("%dKB", kb), func(b *testing.B) {
			art, pairs, base := pipelineFor(b, "perl")
			b.ResetTimer()
			var sp, acc float64
			for i := 0; i < b.N; i++ {
				res, err := spmt.Simulate(art.Trace, spmt.SimConfig{
					TUs: 16, Pairs: pairs, Predictor: spmt.Stride,
					PredictorBytes: kb << 10, SpawnWindowFactor: 4,
				})
				if err != nil {
					b.Fatal(err)
				}
				sp = float64(base) / float64(res.Cycles)
				acc = res.VPAccuracy()
			}
			b.ReportMetric(sp, "speedup")
			b.ReportMetric(100*acc, "accuracy-pct")
		})
	}
}

// BenchmarkAblationCoverage sweeps the CFG pruning coverage around the
// paper's 90%.
func BenchmarkAblationCoverage(b *testing.B) {
	for _, cov := range []float64{0.80, 0.90, 0.97} {
		b.Run(fmt.Sprintf("cov-%.0f", cov*100), func(b *testing.B) {
			prog := spmt.MustGenerate("li", spmt.SizeSmall)
			b.ResetTimer()
			var sel float64
			for i := 0; i < b.N; i++ {
				art, err := spmt.Analyze(prog, spmt.AnalyzeConfig{Coverage: cov})
				if err != nil {
					b.Fatal(err)
				}
				pairs, err := spmt.SelectPairs(art, spmt.SelectConfig{})
				if err != nil {
					b.Fatal(err)
				}
				sel = float64(pairs.Len())
			}
			b.ReportMetric(sel, "selected-pairs")
		})
	}
}

// BenchmarkAblationReachEngine compares the exact matrix engine against
// the trace-empirical estimator on the same pruned graph.
func BenchmarkAblationReachEngine(b *testing.B) {
	prog := spmt.MustGenerate("m88ksim", spmt.SizeSmall)
	art, err := spmt.Analyze(prog, spmt.AnalyzeConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("matrix", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := reach.Compute(art.Graph); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("empirical", func(b *testing.B) {
		visits := reach.VisitsFromTrace(art.Trace, art.Graph)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			reach.Empirical(art.Graph, visits)
		}
	})
}

// --- Substrate microbenchmarks ---

func BenchmarkEmulator(b *testing.B) {
	prog := spmt.MustGenerate("compress", spmt.SizeSmall)
	b.ResetTimer()
	var instrs int64
	for i := 0; i < b.N; i++ {
		res, err := emu.Run(prog, emu.Config{})
		if err != nil {
			b.Fatal(err)
		}
		instrs = int64(res.Instrs)
	}
	b.ReportMetric(float64(instrs), "instrs/op")
}

func BenchmarkSimulator16TU(b *testing.B) {
	art, pairs, _ := pipelineFor(b, "compress")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spmt.Simulate(art.Trace, spmt.SimConfig{TUs: 16, Pairs: pairs, SpawnWindowFactor: 4}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(art.Trace.Len()), "instrs/op")
}

func BenchmarkCacheAccess(b *testing.B) {
	c := cache.New(cache.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i*40)&0xffff, int64(i))
	}
}

func BenchmarkStridePredictor(b *testing.B) {
	p := vpred.NewStride(16 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Predict(10, 20, 5)
		p.Update(10, 20, 5, uint64(i)*8)
	}
}

// --- shared pipeline helper ---

var (
	pipeMu    sync.Mutex
	pipeCache = map[string]*pipeArt{}
)

type pipeArt struct {
	art   *spmt.Artifacts
	pairs *spmt.PairTable
	base  int64
}

func pipelineFor(b *testing.B, name string) (*spmt.Artifacts, *spmt.PairTable, int64) {
	pipeMu.Lock()
	defer pipeMu.Unlock()
	if pa, ok := pipeCache[name]; ok {
		return pa.art, pa.pairs, pa.base
	}
	prog := spmt.MustGenerate(name, spmt.SizeSmall)
	art, err := spmt.Analyze(prog, spmt.AnalyzeConfig{})
	if err != nil {
		b.Fatal(err)
	}
	pairs, err := spmt.SelectPairs(art, spmt.SelectConfig{})
	if err != nil {
		b.Fatal(err)
	}
	base, err := spmt.Simulate(art.Trace, spmt.SimConfig{TUs: 1})
	if err != nil {
		b.Fatal(err)
	}
	pa := &pipeArt{art: art, pairs: pairs, base: base.Cycles}
	pipeCache[name] = pa
	return pa.art, pa.pairs, pa.base
}
